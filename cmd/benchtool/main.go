// Command benchtool regenerates the paper's tables and figures by driving
// the typed experiment registry in internal/workload. Every experiment —
// each figure, table, ablation and scenario sweep of the evaluation
// (§5–§6) — registers a descriptor (name, params with defaults, Run);
// benchtool is a generic front end over them:
//
//	benchtool list                     # registered experiments + params
//	benchtool run fig5b fig9           # run by name
//	benchtool run all                  # everything, in paper order
//	benchtool -quick run all           # reduced op counts, smoke pass
//	benchtool -p ops=400 -p seed=7 run fig5b   # per-param overrides
//	benchtool -json FILE run all       # structured Table JSON per figure
//	benchtool validate FILE            # parse-check a -json record
//
// The bare historical spelling (`benchtool fig5b`, `benchtool all`) still
// works. With default params every experiment reproduces its recorded
// figure bit-identically.
//
// The selfbench experiment measures the harness itself (wall-clock time
// per interpreted operation on the hot figure paths) rather than the
// simulated metrics; with -json FILE the results are written as a JSON
// record so successive PRs can track the interpreter's real speed
// (BENCH_seed.json, BENCH_pr1.json, ...). The -check flag compares a
// recorded selfbench JSON against the best committed BENCH_*.json and
// exits non-zero on a >20% dd-path regression — the CI bench gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"adelie/internal/workload"
)

// paramFlags collects repeated -p key=val overrides.
type paramFlags []string

func (p *paramFlags) String() string { return strings.Join(*p, ",") }
func (p *paramFlags) Set(s string) error {
	if !strings.Contains(s, "=") {
		return fmt.Errorf("want key=val, got %q", s)
	}
	*p = append(*p, s)
	return nil
}

func main() {
	quick := flag.Bool("quick", false, "reduced op counts (each param's quick value)")
	jsonPath := flag.String("json", "", "write results as JSON: selfbench record, or structured figure tables")
	checkPath := flag.String("check", "", "compare this selfbench JSON against the best BENCH_*.json; exit 1 on >20% dd regression")
	reps := flag.Int("reps", 1, "selfbench repetitions per path; the minimum wall time is recorded (noisy hosts)")
	var overrides paramFlags
	flag.Var(&overrides, "p", "override an experiment parameter (key=val, repeatable)")
	flag.Parse()
	args := flag.Args()
	if *checkPath != "" {
		if err := checkRegression(*checkPath); err != nil {
			fmt.Fprintf(os.Stderr, "benchtool: check: %v\n", err)
			os.Exit(1)
		}
		if len(args) == 0 {
			return
		}
	}
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "list":
		list()
		return
	case "validate":
		if len(args) != 2 {
			usage()
			os.Exit(2)
		}
		if err := validate(args[1]); err != nil {
			fmt.Fprintf(os.Stderr, "benchtool: validate: %v\n", err)
			os.Exit(1)
		}
		return
	case "run":
		args = args[1:]
		if len(args) == 0 {
			usage()
			os.Exit(2)
		}
	}
	// Anything else: experiment names directly (the historical spelling).
	if err := runExperiments(args, overrides, *quick, *jsonPath, *reps); err != nil {
		fmt.Fprintf(os.Stderr, "benchtool: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: benchtool [-quick] [-p key=val]... [-json FILE] [-check FILE] [-reps N] <command>
commands:
  list                list registered experiments and their parameters
  run <name...|all>   run experiments by registry name (also: bare names)
  validate FILE       parse-check a -json figure record
  selfbench           harness wall-clock benchmark (see -json / -check / -reps)
experiments:`)
	fmt.Fprintf(os.Stderr, "  %s selfbench all\n", strings.Join(workload.Experiments.Names(), " "))
}

// list prints the registry: one line per experiment plus its params.
func list() {
	for _, e := range workload.Experiments.All() {
		fmt.Printf("%-12s %-22s %s\n", e.Name, e.Figure, e.Doc)
		for _, s := range e.ParamSpecs {
			q := ""
			if s.Quick != 0 {
				q = fmt.Sprintf(" (quick %d)", s.Quick)
			}
			fmt.Printf("             -p %s=%d%s  %s\n", s.Name, s.Default, q, s.Doc)
		}
	}
	fmt.Printf("%-12s %-22s %s\n", "selfbench", "—", "harness wall-clock per simulated op (see -json/-check)")
}

// experimentRecord is one experiment's structured result in a -json file.
type experimentRecord struct {
	Name   string           `json:"name"`
	Params map[string]int64 `json:"params"`
	Table  *workload.Table  `json:"table"`
}

// figureRecord is the -json shape for figure runs (selfbench keeps its
// own selfbenchRecord shape).
type figureRecord struct {
	GoVersion   string             `json:"go_version"`
	Quick       bool               `json:"quick"`
	Experiments []experimentRecord `json:"experiments"`
}

func runExperiments(names []string, overrides paramFlags, quick bool, jsonPath string, reps int) error {
	if len(names) == 1 && names[0] == "all" {
		names = workload.Experiments.Names()
	}
	// selfbench's -json record is the BENCH_*.json trajectory format the
	// -check gate reads; figure runs write structured Table JSON. One
	// file can't be both, so mixing them under -json is an error rather
	// than a silent drop of either record.
	if jsonPath != "" && len(names) > 1 {
		for _, n := range names {
			if n == "selfbench" {
				return fmt.Errorf("-json: cannot mix selfbench with figure experiments in one run; invoke them separately")
			}
		}
	}
	// Every -p override must be well-formed and match at least one
	// selected experiment — catching a typo'd key or value up front
	// beats silently running everything at defaults.
	for _, kv := range overrides {
		k, v, _ := strings.Cut(kv, "=")
		if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			return fmt.Errorf("-p %s: %q is not an integer", kv, v)
		}
		matched := false
		for _, name := range names {
			if exp, ok := workload.Experiments.Lookup(name); ok {
				for _, s := range exp.ParamSpecs {
					if s.Name == k {
						matched = true
					}
				}
			}
		}
		if !matched {
			return fmt.Errorf("-p %s: no selected experiment has parameter %q (see benchtool list)", kv, k)
		}
	}
	rec := figureRecord{GoVersion: runtime.Version(), Quick: quick}
	wroteSelfbench := false
	for _, name := range names {
		if name == "selfbench" {
			// selfbench owns the -json path when present: its record is
			// the BENCH_*.json trajectory format the -check gate reads.
			scale := 1
			if quick {
				scale = 8
			}
			if err := selfbench(jsonPath, scale, reps); err != nil {
				return fmt.Errorf("selfbench: %w", err)
			}
			wroteSelfbench = jsonPath != ""
			continue
		}
		exp, ok := workload.Experiments.Lookup(name)
		if !ok {
			return unknownExperiment(name)
		}
		p := exp.Params(quick)
		for _, kv := range overrides {
			k, v, _ := strings.Cut(kv, "=")
			// In a multi-name run "-p ops=…" tunes the experiments that
			// have the param; pre-validation above guarantees each key
			// matched somewhere and each value parses.
			if err := p.SetString(k, v); err != nil {
				continue
			}
		}
		t, err := exp.Run(p)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		t.Fprint(os.Stdout)
		rec.Experiments = append(rec.Experiments, experimentRecord{
			Name: name, Params: p.Map(), Table: t,
		})
	}
	if jsonPath != "" && len(rec.Experiments) > 0 && !wroteSelfbench {
		b, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(jsonPath, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// unknownExperiment builds the error for a name the registry doesn't
// know: a closest-match suggestion plus the full list.
func unknownExperiment(name string) error {
	msg := fmt.Sprintf("unknown experiment %q", name)
	if s := workload.Experiments.Suggest(name); s != "" {
		msg += fmt.Sprintf("; did you mean %q?", s)
	}
	return fmt.Errorf("%s\nregistered: %s selfbench", msg, strings.Join(workload.Experiments.Names(), " "))
}

// validate parse-checks a figure -json record: every experiment entry
// must carry a non-empty table whose rows match its column schema. CI
// runs it after the `run all -quick -json` smoke step.
func validate(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rec, err := parseFigureRecord(b)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(rec.Experiments) == 0 {
		// An empty record must fail loudly: a gate that "validates" a
		// run which recorded nothing would wave every regression
		// through. This covers {"experiments": []} and a bare [] alike.
		return fmt.Errorf("%s: no records", path)
	}
	var check func(name string, t *workload.Table) error
	check = func(name string, t *workload.Table) error {
		if t == nil {
			return fmt.Errorf("%s: experiment %s has no table", path, name)
		}
		if len(t.Rows) == 0 && len(t.Children) == 0 {
			return fmt.Errorf("%s: experiment %s: empty table %q", path, name, t.Title)
		}
		for i, row := range t.Rows {
			if len(row) != len(t.Columns) {
				return fmt.Errorf("%s: experiment %s: table %q row %d has %d cells for %d columns",
					path, name, t.Title, i, len(row), len(t.Columns))
			}
		}
		for _, c := range t.Children {
			if err := check(name, c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, e := range rec.Experiments {
		if err := check(e.Name, e.Table); err != nil {
			return err
		}
	}
	fmt.Printf("validate: %s ok (%d experiments)\n", path, len(rec.Experiments))
	return nil
}

// parseFigureRecord decodes a -json figure capture. The canonical shape
// is the figureRecord object benchtool writes; a bare JSON array of
// experiment records is accepted too, so hand-assembled captures (and
// the degenerate empty array) hit the "no records" gate instead of an
// unmarshal type error.
func parseFigureRecord(b []byte) (figureRecord, error) {
	var rec figureRecord
	objErr := json.Unmarshal(b, &rec)
	if objErr == nil {
		return rec, nil
	}
	if err := json.Unmarshal(b, &rec.Experiments); err != nil {
		return figureRecord{}, objErr
	}
	return rec, nil
}

// ---------------------------------------------------------------------------
// selfbench + the -check regression gate (the BENCH_*.json trajectory).

// ddBenchKey is the hot-path figure the performance trajectory tracks;
// nicBenchKey is the NIC RX→ISR→TX round-trip path added with the
// device bus. Both are gated by -check (the NIC key only against
// baselines that recorded it).
const (
	ddBenchKey  = "fig5b_dd64_picret"
	nicBenchKey = "nic_rx_irq_roundtrip"
)

// regressionMargin is how much slower than the best recorded baseline
// the gated run may be before the check fails. The default matches the
// repo's 20% policy; BENCHGATE_MARGIN_PCT overrides it (e.g. 150 on a
// CI fleet whose hardware differs from the machines that recorded the
// baselines).
func regressionMargin() float64 {
	if s := os.Getenv("BENCHGATE_MARGIN_PCT"); s != "" {
		var pct float64
		if _, err := fmt.Sscanf(s, "%f", &pct); err == nil && pct > 0 {
			return 1 + pct/100
		}
	}
	return 1.20
}

func readRecord(path string) (selfbenchRecord, error) {
	var rec selfbenchRecord
	b, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	return rec, json.Unmarshal(b, &rec)
}

// checkRegression fails if a gated host-ns/op path in the given
// selfbench record regressed more than regressionMargin versus the
// fastest committed BENCH_*.json baseline that recorded that path.
// Baselines predating a metric (e.g. the NIC round-trip, added with the
// device bus) simply don't constrain it.
func checkRegression(path string) error {
	cur, err := readRecord(path)
	if err != nil {
		return err
	}
	// The record under check comes from the current selfbench, which
	// always emits every gated path — a missing key means the gate
	// would silently stop gating, so fail loudly instead. (Baselines
	// may legitimately predate a metric; see below.)
	for _, key := range []string{ddBenchKey, nicBenchKey} {
		if _, ok := cur.WallNsOp[key]; !ok {
			return fmt.Errorf("%s: no %q measurement", path, key)
		}
	}
	baselineNames, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return err
	}
	baselines := make(map[string]selfbenchRecord, len(baselineNames))
	for _, b := range baselineNames {
		rec, err := readRecord(b)
		if err != nil {
			return fmt.Errorf("%s: %w", b, err)
		}
		baselines[b] = rec
	}
	margin := regressionMargin()
	for _, key := range []string{ddBenchKey, nicBenchKey} {
		curNs := cur.WallNsOp[key]
		bestNs, bestName := 0.0, ""
		for _, b := range baselineNames {
			if ns, ok := baselines[b].WallNsOp[key]; ok && (bestName == "" || ns < bestNs) {
				bestNs, bestName = ns, b
			}
		}
		if bestName == "" {
			fmt.Printf("check: no BENCH_*.json baselines with %q; nothing to compare\n", key)
			continue
		}
		if curNs > bestNs*margin {
			return fmt.Errorf("%s regressed: %.0f ns/op vs best baseline %.0f ns/op (%s, margin %.0f%%)",
				key, curNs, bestNs, bestName, (margin-1)*100)
		}
		fmt.Printf("check: %s %.0f ns/op within %.0f%% of best baseline %.0f ns/op (%s)\n",
			key, curNs, (margin-1)*100, bestNs, bestName)
	}
	return nil
}

// selfbenchRecord is the JSON shape of one recorded harness benchmark.
type selfbenchRecord struct {
	GoVersion string             `json:"go_version"`
	Quick     bool               `json:"quick"`
	Reps      int                `json:"reps,omitempty"` // repetitions per path (min recorded)
	WallNsOp  map[string]float64 `json:"wall_ns_per_op"` // host ns per simulated op
	Metrics   map[string]float64 `json:"metrics"`        // simulated headline metrics
}

// selfbench times the harness on the hot interpreter paths. Wall-clock
// per-op figures are what the decoded-instruction cache, lock-light
// translation path and superblock trace linking are meant to improve;
// the simulated metrics ride along as a sanity check that optimization
// did not change results. With reps > 1 each path runs that many times
// and the minimum wall time is recorded — the standard noise-robust
// estimator on shared hosts (the simulated metrics are deterministic,
// so repetition cannot change them).
func selfbench(jsonPath string, scale, reps int) error {
	fmt.Printf("\n== %s ==\n", "selfbench — harness wall-clock per simulated operation")
	if reps < 1 {
		reps = 1
	}
	rec := selfbenchRecord{
		GoVersion: runtime.Version(),
		Quick:     scale > 1,
		Reps:      reps,
		WallNsOp:  map[string]float64{},
		Metrics:   map[string]float64{},
	}
	// timeMin records the minimum wall ns/op over reps runs of f.
	timeMin := func(key string, ops int, f func() error) error {
		for r := 0; r < reps; r++ {
			start := time.Now()
			if err := f(); err != nil {
				return err
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(ops)
			if r == 0 || ns < rec.WallNsOp[key] {
				rec.WallNsOp[key] = ns
			}
		}
		return nil
	}

	ddOps := 1600 / scale
	err := timeMin("fig5b_dd64_picret", ddOps, func() error {
		dd, err := workload.DD(workload.CfgPICRet, 64, ddOps)
		if err != nil {
			return err
		}
		rec.Metrics["fig5b_dd64_picret_mbps"] = dd.MBps
		// Chain rate: share of retired basic blocks entered by following
		// a trace link instead of returning to the dispatch loop. A
		// collapse here (with unchanged simulated MBps) means the hot
		// path fell back to per-block dispatch — the regression the
		// wall-clock gate alone can't attribute.
		if dd.Blocks > 0 {
			rec.Metrics["fig5b_dd64_picret_chain_pct"] = 100 * float64(dd.ChainedBlocks) / float64(dd.Blocks)
		}
		return nil
	})
	if err != nil {
		return err
	}

	ioctlOps := 12000 / scale
	err = timeMin("fig9_ioctl_rerandstack", ioctlOps, func() error {
		io, err := workload.Ioctl("wrappers+stack", workload.CfgRerandStack, ioctlOps)
		if err != nil {
			return err
		}
		rec.Metrics["fig9_ioctl_rerandstack_mops"] = io.MopsPerSec
		return nil
	})
	if err != nil {
		return err
	}

	nvmeOps := 2400 / scale
	err = timeMin("fig6_nvme_1ms", nvmeOps, func() error {
		nv, err := workload.NVMeDirectRead(workload.Period1ms, false, nvmeOps)
		if err != nil {
			return err
		}
		rec.Metrics["fig6_nvme_1ms_mbps"] = nv.MBps
		return nil
	})
	if err != nil {
		return err
	}

	oltpTxs := 240 / scale
	err = timeMin("fig7_oltp_5ms_c100", oltpTxs, func() error {
		ol, err := workload.OLTP(workload.Period5ms, false, 100, oltpTxs)
		if err != nil {
			return err
		}
		rec.Metrics["fig7_oltp_5ms_c100_tps"] = ol.TPS
		return nil
	})
	if err != nil {
		return err
	}

	// NIC RX round-trip: loadgen frame → RX ring → IRQ → NAPI ISR drain
	// → server response frame, per-frame interrupts (the latency-bound
	// end of the coalescing sweep).
	nicOps := 2400 / scale
	err = timeMin(nicBenchKey, nicOps, func() error {
		nic, err := workload.NICCoalesce(1, 100, nicOps)
		if err != nil {
			return err
		}
		rec.Metrics["nic_rx_irq_latency_us"] = nic.AvgIRQLatUs
		rec.Metrics["nic_rx_irq_dropped"] = float64(nic.Dropped)
		return nil
	})
	if err != nil {
		return err
	}

	sc, err := workload.Scalability([]int{20}, 20)
	if err != nil {
		return err
	}
	rec.Metrics["scalability_20mods_corepct"] = sc[0].CPUPct

	fmt.Printf("%-26s %16s\n", "path", "host ns/op")
	for _, k := range sortedKeys(rec.WallNsOp) {
		fmt.Printf("%-26s %16.0f\n", k, rec.WallNsOp[k])
	}
	fmt.Printf("%-34s %12s\n", "simulated metric", "value")
	for _, k := range sortedKeys(rec.Metrics) {
		fmt.Printf("%-34s %12.3f\n", k, rec.Metrics[k])
	}

	if jsonPath != "" {
		b, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(jsonPath, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
