// Command benchtool regenerates the paper's tables and figures. Each
// experiment id prints the data series behind one figure/table of the
// evaluation (§5–§6):
//
//	benchtool fig1 fig5a fig5b fig5c fig5d fig6 fig7 fig8 fig9 fig10
//	benchtool table2 scalability security
//	benchtool all
//
// The -quick flag shrinks op counts for a fast smoke pass.
//
// The selfbench experiment measures the harness itself (wall-clock time
// per interpreted operation on the hot figure paths) rather than the
// simulated metrics; with -json FILE the results are written as a JSON
// record so successive PRs can track the interpreter's real speed
// (BENCH_seed.json, BENCH_pr1.json, ...). The -check flag compares a
// recorded selfbench JSON against the best committed BENCH_*.json and
// exits non-zero on a >20% dd-path regression — the CI bench gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"adelie/internal/attack"
	"adelie/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "reduced op counts")
	jsonPath := flag.String("json", "", "write selfbench results to this JSON file")
	checkPath := flag.String("check", "", "compare this selfbench JSON against the best BENCH_*.json; exit 1 on >20% dd regression")
	flag.Parse()
	args := flag.Args()
	if *checkPath != "" {
		if err := checkRegression(*checkPath); err != nil {
			fmt.Fprintf(os.Stderr, "benchtool: check: %v\n", err)
			os.Exit(1)
		}
		if len(args) == 0 {
			return
		}
	}
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	scale := 1
	if *quick {
		scale = 8
	}
	if len(args) == 1 && args[0] == "all" {
		args = []string{"fig1", "fig5a", "fig5b", "fig5c", "fig5d", "fig6",
			"fig7", "fig8", "fig9", "fig10", "table2", "scalability", "security", "ablation", "coalesce"}
	}
	for _, id := range args {
		var err error
		if id == "selfbench" {
			err = selfbench(*jsonPath, scale)
		} else {
			err = run(id, scale)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtool: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: benchtool [-quick] [-json FILE] [-check FILE] <experiment>...
experiments: fig1 fig5a fig5b fig5c fig5d fig6 fig7 fig8 fig9 fig10
             table2 scalability security ablation coalesce selfbench all`)
}

// ddBenchKey is the hot-path figure the performance trajectory tracks;
// nicBenchKey is the NIC RX→ISR→TX round-trip path added with the
// device bus. Both are gated by -check (the NIC key only against
// baselines that recorded it).
const (
	ddBenchKey  = "fig5b_dd64_picret"
	nicBenchKey = "nic_rx_irq_roundtrip"
)

// regressionMargin is how much slower than the best recorded baseline
// the gated run may be before the check fails. The default matches the
// repo's 20% policy; BENCHGATE_MARGIN_PCT overrides it (e.g. 150 on a
// CI fleet whose hardware differs from the machines that recorded the
// baselines).
func regressionMargin() float64 {
	if s := os.Getenv("BENCHGATE_MARGIN_PCT"); s != "" {
		var pct float64
		if _, err := fmt.Sscanf(s, "%f", &pct); err == nil && pct > 0 {
			return 1 + pct/100
		}
	}
	return 1.20
}

func readRecord(path string) (selfbenchRecord, error) {
	var rec selfbenchRecord
	b, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	return rec, json.Unmarshal(b, &rec)
}

// checkRegression fails if a gated host-ns/op path in the given
// selfbench record regressed more than regressionMargin versus the
// fastest committed BENCH_*.json baseline that recorded that path.
// Baselines predating a metric (e.g. the NIC round-trip, added with the
// device bus) simply don't constrain it.
func checkRegression(path string) error {
	cur, err := readRecord(path)
	if err != nil {
		return err
	}
	// The record under check comes from the current selfbench, which
	// always emits every gated path — a missing key means the gate
	// would silently stop gating, so fail loudly instead. (Baselines
	// may legitimately predate a metric; see below.)
	for _, key := range []string{ddBenchKey, nicBenchKey} {
		if _, ok := cur.WallNsOp[key]; !ok {
			return fmt.Errorf("%s: no %q measurement", path, key)
		}
	}
	baselineNames, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return err
	}
	baselines := make(map[string]selfbenchRecord, len(baselineNames))
	for _, b := range baselineNames {
		rec, err := readRecord(b)
		if err != nil {
			return fmt.Errorf("%s: %w", b, err)
		}
		baselines[b] = rec
	}
	margin := regressionMargin()
	for _, key := range []string{ddBenchKey, nicBenchKey} {
		curNs := cur.WallNsOp[key]
		bestNs, bestName := 0.0, ""
		for _, b := range baselineNames {
			if ns, ok := baselines[b].WallNsOp[key]; ok && (bestName == "" || ns < bestNs) {
				bestNs, bestName = ns, b
			}
		}
		if bestName == "" {
			fmt.Printf("check: no BENCH_*.json baselines with %q; nothing to compare\n", key)
			continue
		}
		if curNs > bestNs*margin {
			return fmt.Errorf("%s regressed: %.0f ns/op vs best baseline %.0f ns/op (%s, margin %.0f%%)",
				key, curNs, bestNs, bestName, (margin-1)*100)
		}
		fmt.Printf("check: %s %.0f ns/op within %.0f%% of best baseline %.0f ns/op (%s)\n",
			key, curNs, (margin-1)*100, bestNs, bestName)
	}
	return nil
}

// selfbenchRecord is the JSON shape of one recorded harness benchmark.
type selfbenchRecord struct {
	GoVersion string             `json:"go_version"`
	Quick     bool               `json:"quick"`
	WallNsOp  map[string]float64 `json:"wall_ns_per_op"` // host ns per simulated op
	Metrics   map[string]float64 `json:"metrics"`        // simulated headline metrics
}

// selfbench times the harness on the hot interpreter paths. Wall-clock
// per-op figures are what the decoded-instruction cache and lock-light
// translation path are meant to improve; the simulated metrics ride
// along as a sanity check that optimization did not change results.
func selfbench(jsonPath string, scale int) error {
	header("selfbench — harness wall-clock per simulated operation")
	rec := selfbenchRecord{
		GoVersion: runtime.Version(),
		Quick:     scale > 1,
		WallNsOp:  map[string]float64{},
		Metrics:   map[string]float64{},
	}

	ddOps := 1600 / scale
	start := time.Now()
	dd, err := workload.DD(workload.CfgPICRet, 64, ddOps)
	if err != nil {
		return err
	}
	rec.WallNsOp["fig5b_dd64_picret"] = float64(time.Since(start).Nanoseconds()) / float64(ddOps)
	rec.Metrics["fig5b_dd64_picret_mbps"] = dd.MBps

	ioctlOps := 12000 / scale
	start = time.Now()
	io, err := workload.Ioctl("wrappers+stack", workload.CfgRerandStack, ioctlOps)
	if err != nil {
		return err
	}
	rec.WallNsOp["fig9_ioctl_rerandstack"] = float64(time.Since(start).Nanoseconds()) / float64(ioctlOps)
	rec.Metrics["fig9_ioctl_rerandstack_mops"] = io.MopsPerSec

	nvmeOps := 2400 / scale
	start = time.Now()
	nv, err := workload.NVMeDirectRead(workload.Period1ms, false, nvmeOps)
	if err != nil {
		return err
	}
	rec.WallNsOp["fig6_nvme_1ms"] = float64(time.Since(start).Nanoseconds()) / float64(nvmeOps)
	rec.Metrics["fig6_nvme_1ms_mbps"] = nv.MBps

	oltpTxs := 240 / scale
	start = time.Now()
	ol, err := workload.OLTP(workload.Period5ms, false, 100, oltpTxs)
	if err != nil {
		return err
	}
	rec.WallNsOp["fig7_oltp_5ms_c100"] = float64(time.Since(start).Nanoseconds()) / float64(oltpTxs)
	rec.Metrics["fig7_oltp_5ms_c100_tps"] = ol.TPS

	// NIC RX round-trip: loadgen frame → RX ring → IRQ → NAPI ISR drain
	// → server response frame, per-frame interrupts (the latency-bound
	// end of the coalescing sweep).
	nicOps := 2400 / scale
	start = time.Now()
	nic, err := workload.NICCoalesce(1, 100, nicOps)
	if err != nil {
		return err
	}
	rec.WallNsOp[nicBenchKey] = float64(time.Since(start).Nanoseconds()) / float64(nicOps)
	rec.Metrics["nic_rx_irq_latency_us"] = nic.AvgIRQLatUs
	rec.Metrics["nic_rx_irq_dropped"] = float64(nic.Dropped)

	sc, err := workload.Scalability([]int{20}, 20)
	if err != nil {
		return err
	}
	rec.Metrics["scalability_20mods_corepct"] = sc[0].CPUPct

	fmt.Printf("%-26s %16s\n", "path", "host ns/op")
	for _, k := range sortedKeys(rec.WallNsOp) {
		fmt.Printf("%-26s %16.0f\n", k, rec.WallNsOp[k])
	}
	fmt.Printf("%-34s %12s\n", "simulated metric", "value")
	for _, k := range sortedKeys(rec.Metrics) {
		fmt.Printf("%-34s %12.3f\n", k, rec.Metrics[k])
	}

	if jsonPath != "" {
		b, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(jsonPath, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func header(title string) {
	fmt.Printf("\n== %s ==\n", title)
}

func run(id string, scale int) error {
	switch id {
	case "fig1":
		header("Fig. 1 — driver CVEs per year (synthesized series, see EXPERIMENTS.md)")
		fmt.Printf("%-6s %8s %8s\n", "year", "linux", "windows")
		for _, p := range attack.CVEData {
			fmt.Printf("%-6d %8d %8d\n", p.Year, p.Linux, p.Windows)
		}
		return nil

	case "fig5a":
		header("Fig. 5a — module size, vanilla vs PIC+retpoline (bytes)")
		rows, err := workload.ModuleSizes(8)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %10s %10s %8s\n", "module", "linux", "pic", "ratio")
		for _, r := range rows {
			fmt.Printf("%-12s %10d %10d %8.3f\n", r.Module, r.VanillaBytes, r.PICBytes,
				float64(r.PICBytes)/float64(r.VanillaBytes))
		}
		return nil

	case "fig5b":
		header("Fig. 5b — dd cached-read microbenchmark (MB/s)")
		rows, err := workload.DDSweep(1600 / scale)
		if err != nil {
			return err
		}
		return printMatrix(rowsToCells(rows, func(r workload.DDRow) (string, string, float64) {
			return fmt.Sprintf("%dKB", r.BlockKB), string(r.Config), r.MBps
		}))

	case "fig5c":
		header("Fig. 5c — sysbench file_io cached reads (MB/s)")
		rows, err := workload.SysbenchSweep(1200 / scale)
		if err != nil {
			return err
		}
		return printMatrix(rowsToCells(rows, func(r workload.SysbenchRow) (string, string, float64) {
			return r.Mode, string(r.Config), r.MBps
		}))

	case "fig5d":
		header("Fig. 5d — kernbench kernel-space time (ms, fixed job count)")
		rows, err := workload.KernbenchSweep(160 / scale)
		if err != nil {
			return err
		}
		return printMatrix(rowsToCells(rows, func(r workload.KernbenchRow) (string, string, float64) {
			return fmt.Sprintf("-j%d", r.Concurrency), string(r.Config), r.KernelSec * 1000
		}))

	case "fig6":
		header("Fig. 6 — NVMe O_DIRECT 512B read under re-randomization")
		rows, err := workload.NVMeSweep(2400 / scale)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %10s %12s %8s %10s\n", "config", "MB/s", "IOPS", "CPU%", "rerand%")
		for _, r := range rows {
			fmt.Printf("%-10s %10.1f %12.0f %8.2f %10.4f\n", r.Period, r.MBps, r.IOPS, r.CPUPct, r.RerandPct)
		}
		return nil

	case "fig7":
		header("Fig. 7 — mySQL OLTP (E1000E+NVMe re-randomized)")
		rows, err := workload.OLTPSweep(400 / scale)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %6s %10s %8s %8s\n", "config", "conc", "tx/s", "CPU%", "drops")
		for _, r := range rows {
			fmt.Printf("%-10s %6d %10.0f %8.2f %8d\n", r.Period, r.Concurrency, r.TPS, r.CPUPct, r.NICDropped)
		}
		return nil

	case "fig8":
		header("Fig. 8 — ApacheBench (5 modules re-randomized)")
		rows, err := workload.ApacheSweep(240 / scale)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %7s %6s %10s %8s %8s\n", "config", "block", "conc", "MB/s", "CPU%", "drops")
		for _, r := range rows {
			fmt.Printf("%-10s %7d %6d %10.1f %8.2f %8d\n", r.Period, r.BlockBytes, r.Concurrency, r.MBps, r.CPUPct, r.NICDropped)
		}
		return nil

	case "fig9":
		header("Fig. 9 — IOCTL null-op throughput (CPU-bound worst case)")
		rows, err := workload.IoctlSweep(24000 / scale)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %10s %8s %10s\n", "variant", "Mops/s", "CPU%", "vs linux")
		base := rows[0].MopsPerSec
		for _, r := range rows {
			fmt.Printf("%-16s %10.3f %8.2f %9.1f%%\n", r.Variant, r.MopsPerSec, r.CPUPct,
				(r.MopsPerSec/base-1)*100)
		}
		return nil

	case "fig10":
		header("Fig. 10 — ROP gadget distribution (counts per class)")
		rows, err := workload.GadgetDistribution(120 / max(1, scale/4))
		if err != nil {
			return err
		}
		classes := []attack.GadgetClass{}
		seen := map[attack.GadgetClass]bool{}
		for _, r := range rows {
			for _, c := range r.Dist.Classes() {
				if !seen[c] {
					seen[c] = true
					classes = append(classes, c)
				}
			}
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
		fmt.Printf("%-15s", "population")
		for _, c := range classes {
			fmt.Printf(" %9s", c)
		}
		fmt.Printf(" %9s\n", "total")
		for _, r := range rows {
			fmt.Printf("%-15s", r.Population)
			for _, c := range classes {
				fmt.Printf(" %9d", r.Dist[c])
			}
			fmt.Printf(" %9d\n", r.Dist.Total())
		}
		return nil

	case "table2":
		header("Table 2 — ROP gadget categories (NX-disable chains)")
		fmt.Printf("%-38s %10s %10s\n", "", "Non-PIC", "PIC")
		n := 400 / max(1, scale/2)
		plain, err := workload.ChainCensus(n, false)
		if err != nil {
			return err
		}
		pic, err := workload.ChainCensus(n, true)
		if err != nil {
			return err
		}
		fmt.Printf("%-38s %10d %10d\n", "With ROP Chain, no side-effect", plain.CleanChain, pic.CleanChain)
		fmt.Printf("%-38s %10d %10d\n", "With ROP Chain, with side-effect", plain.SideEffectChain, pic.SideEffectChain)
		fmt.Printf("%-38s %10d %10d\n", "Without ROP Chain", plain.NoChain, pic.NoChain)
		fmt.Printf("%-38s %10d %10d\n", "Number of Modules", plain.Modules, pic.Modules)
		fmt.Printf("chain rate: non-PIC %.1f%%, PIC %.1f%% (paper: 80%%)\n",
			float64(plain.CleanChain+plain.SideEffectChain)/float64(n)*100,
			float64(pic.CleanChain+pic.SideEffectChain)/float64(n)*100)
		return nil

	case "scalability":
		header("§5.4 — re-randomizer thread CPU share (20 ms period)")
		counts := []int{1, 5, 20, 60, 120}
		if scale > 1 {
			counts = []int{1, 5, 20}
		}
		rows, err := workload.Scalability(counts, 20)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %12s\n", "modules", "CPU% (1 core)")
		for _, r := range rows {
			fmt.Printf("%-10d %12.4f\n", r.Modules, r.CPUPct)
		}
		if len(rows) > 1 {
			per := rows[len(rows)-1].CPUPct / float64(rows[len(rows)-1].Modules)
			fmt.Printf("extrapolated 950 modules: %.2f%% of one core (paper: comfortably feasible)\n", per*950)
		}
		return nil

	case "ablation":
		header("Ablation A — loader run-time patching (paper Fig. 4 / §4.1)")
		prows, err := workload.PatchingAblation(2000)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %18s %14s %16s\n", "driver", "GOT entries", "PLT stubs", "patched sites")
		for _, r := range prows {
			fmt.Printf("%-8s %8d → %-7d %5d → %-6d %7d+%d\n", r.Driver,
				r.GotEntriesUnpatched, r.GotEntriesPatched,
				r.StubsUnpatched, r.StubsPatched,
				r.CallsPatched, r.LoadsPatched)
		}
		for _, r := range prows {
			if r.Driver == "dummy" {
				fmt.Printf("dummy ioctl rate: %.3f Mops/s patched vs %.3f unpatched\n",
					r.MopsPatched, r.MopsUnpatched)
			}
		}

		header("Ablation B — SMR scheme as the delayed-unmap backend (§3.4)")
		srows, err := workload.SMRAblation()
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %22s %18s %12s\n", "scheme", "backlog (no driving)", "after flush", "step cycles")
		for _, r := range srows {
			fmt.Printf("%-10s %22d %18d %12d\n", r.Scheme, r.DeltaAfterSteps, r.DeltaAfterFlush, r.StepCycles)
		}

		header("Ablation C — per-mechanism instrumentation cost")
		mrows, err := workload.MechanismAblation(6000)
		if err != nil {
			return err
		}
		base := mrows[0].MopsPerSec
		fmt.Printf("%-24s %10s %10s\n", "mechanisms", "Mops/s", "vs pic")
		for _, r := range mrows {
			fmt.Printf("%-24s %10.3f %9.1f%%\n", r.Mechanism, r.MopsPerSec, (r.MopsPerSec/base-1)*100)
		}
		return nil

	case "coalesce":
		header("NIC interrupt coalescing — RX latency / IRQ rate / drops vs max-frames")
		rows, err := workload.NICCoalesceSweep(960 / scale)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %9s %8s %8s %8s %8s %12s %10s\n",
			"maxframes", "delay_us", "rx", "drained", "dropped", "irqs", "raised", "rxlat_us")
		for _, r := range rows {
			fmt.Printf("%-10d %9.0f %8d %8d %8d %8d %12d %10.2f\n",
				r.MaxFrames, r.DelayUs, r.RxFrames, r.DrainedRx, r.Dropped, r.IRQs, r.IRQsRaised, r.AvgIRQLatUs)
		}
		return nil

	case "security":
		header("§6 — security analysis")
		rep, err := workload.SecurityAnalysis()
		if err != nil {
			return err
		}
		fmt.Printf("guess probability     vanilla 2^-19 = %.3g   Adelie 2^-44 = %.3g\n",
			rep.VanillaGuessProb, rep.Full64GuessProb)
		fmt.Printf("brute force (8-page module, ≤4M probes):\n")
		fmt.Printf("  vanilla window: found=%v after %d attempts\n",
			rep.VanillaBruteForce.Found, rep.VanillaBruteForce.Attempts)
		fmt.Printf("  64-bit window:  found=%v after %d attempts\n",
			rep.Full64BruteForce.Found, rep.Full64BruteForce.Attempts)
		fmt.Printf("JIT-ROP (attack ≈ %.0f µs end-to-end):\n", rep.AttackMicros)
		fmt.Printf("  no re-randomization: success=%v (%s)\n",
			rep.JITROPVanilla.Succeeded, rep.JITROPVanilla.Reason)
		fmt.Printf("  5 ms period:         success=%v (%s)\n",
			rep.JITROPDefended.Succeeded, rep.JITROPDefended.Reason)
		return nil
	}
	return fmt.Errorf("unknown experiment %q", id)
}

// printMatrix renders (row, col, value) cells as a table with stable
// row/column order of first appearance.
type cell struct {
	row, col string
	val      float64
}

func rowsToCells[T any](rows []T, f func(T) (string, string, float64)) []cell {
	out := make([]cell, len(rows))
	for i, r := range rows {
		rr, cc, v := f(r)
		out[i] = cell{rr, cc, v}
	}
	return out
}

func printMatrix(cells []cell) error {
	var rowOrder, colOrder []string
	seenR, seenC := map[string]bool{}, map[string]bool{}
	vals := map[string]float64{}
	for _, c := range cells {
		if !seenR[c.row] {
			seenR[c.row] = true
			rowOrder = append(rowOrder, c.row)
		}
		if !seenC[c.col] {
			seenC[c.col] = true
			colOrder = append(colOrder, c.col)
		}
		vals[c.row+"\x00"+c.col] = c.val
	}
	fmt.Printf("%-10s", "")
	for _, c := range colOrder {
		fmt.Printf(" %12s", c)
	}
	fmt.Println()
	for _, r := range rowOrder {
		fmt.Printf("%-10s", r)
		for _, c := range colOrder {
			fmt.Printf(" %12.1f", vals[r+"\x00"+c])
		}
		fmt.Println()
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
