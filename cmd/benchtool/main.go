// Command benchtool regenerates the paper's tables and figures by driving
// the typed experiment registry in internal/workload. Every experiment —
// each figure, table, ablation and scenario sweep of the evaluation
// (§5–§6) — registers a descriptor (name, params with defaults, Run);
// benchtool is a generic front end over them:
//
//	benchtool list                     # registered experiments + params
//	benchtool run fig5b fig9           # run by name
//	benchtool run all                  # everything, in paper order
//	benchtool -quick run all           # reduced op counts, smoke pass
//	benchtool -p ops=400 -p seed=7 run fig5b   # per-param overrides
//	benchtool -p ops=100..1600:100 run fig5b   # sweep: one table per point
//	benchtool -parallel -p ops=100..1600:100 run fig5b  # fork-parallel sweep
//	benchtool -json FILE run all       # structured Table JSON per figure
//	benchtool -csv FILE run all        # long-form CSV, one line per cell
//	benchtool validate FILE            # parse-check a -json record
//
// A -p value may be a range "lo..hi[:step]" (step defaults to 1): the
// experiment runs once per point, producing one table per point. With
// -parallel the points fan out across a worker pool and every machine
// boot is served by a copy-on-write fork of a snapshotted template
// instead of a cold boot; the output is bit-identical to the serial
// sweep (CI diffs the two modes).
//
// The bare historical spelling (`benchtool fig5b`, `benchtool all`) still
// works. With default params every experiment reproduces its recorded
// figure bit-identically.
//
// The selfbench experiment measures the harness itself (wall-clock time
// per interpreted operation on the hot figure paths) rather than the
// simulated metrics; with -json FILE the results are written as a JSON
// record so successive PRs can track the interpreter's real speed
// (BENCH_seed.json, BENCH_pr1.json, ...). Its final leg stands up an
// in-process fleet service (internal/service) and records service_rps /
// service_p99_us under ~1k concurrent load-generator requests. The
// -check flag compares a recorded selfbench JSON against the best
// committed BENCH_*.json and exits non-zero on a gated-metric
// regression past the margin — the CI bench gate.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"adelie/internal/service"
	"adelie/internal/workload"
)

// paramFlags collects repeated -p key=val overrides.
type paramFlags []string

func (p *paramFlags) String() string { return strings.Join(*p, ",") }
func (p *paramFlags) Set(s string) error {
	if _, _, err := workload.SplitOverride(s); err != nil {
		return err
	}
	*p = append(*p, s)
	return nil
}

func main() {
	quick := flag.Bool("quick", false, "reduced op counts (each param's quick value)")
	jsonPath := flag.String("json", "", "write results as JSON: selfbench record, or structured figure tables")
	csvPath := flag.String("csv", "", "write figure results as long-form CSV (one line per table cell)")
	checkPath := flag.String("check", "", "compare this selfbench JSON against the best BENCH_*.json; exit 1 on a gated-metric regression")
	reps := flag.Int("reps", 1, "selfbench repetitions per path; the minimum wall time is recorded (noisy hosts)")
	parallel := flag.Bool("parallel", false, "run -p range sweeps fork-parallel (snapshot/fork boot pool + worker fan-out)")
	tracePath := flag.String("trace", "", "record the run's deterministic event trace as Chrome trace_event JSON at FILE (open in Perfetto)")
	profPath := flag.String("prof", "", "sample the guest on the virtual clock; write collapsed stacks to FILE and a flat table to stdout")
	var overrides paramFlags
	flag.Var(&overrides, "p", "override an experiment parameter (key=val or key=lo..hi[:step], repeatable)")
	flag.Parse()
	args := flag.Args()
	if *checkPath != "" {
		if err := checkRegression(*checkPath); err != nil {
			fmt.Fprintf(os.Stderr, "benchtool: check: %v\n", err)
			os.Exit(1)
		}
		if len(args) == 0 {
			return
		}
	}
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "list":
		list()
		return
	case "validate":
		if len(args) != 2 {
			usage()
			os.Exit(2)
		}
		if err := validate(args[1]); err != nil {
			fmt.Fprintf(os.Stderr, "benchtool: validate: %v\n", err)
			os.Exit(1)
		}
		return
	case "report":
		if len(args) != 2 {
			usage()
			os.Exit(2)
		}
		if err := report(args[1], os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchtool: report: %v\n", err)
			os.Exit(1)
		}
		return
	case "run":
		args = args[1:]
		if len(args) == 0 {
			usage()
			os.Exit(2)
		}
	}
	// Anything else: experiment names directly (the historical spelling).
	if err := runExperiments(args, overrides, *quick, *jsonPath, *csvPath, *reps, *parallel, *tracePath, *profPath); err != nil {
		fmt.Fprintf(os.Stderr, "benchtool: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: benchtool [-quick] [-parallel] [-p key=val|key=lo..hi[:step]]... [-json FILE] [-csv FILE] [-check FILE] [-reps N] [-trace FILE] [-prof FILE] <command>
commands:
  list                list registered experiments and their parameters
  run <name...|all>   run experiments by registry name (also: bare names)
  validate FILE       parse-check a -json figure record
  report FILE         render a -json figure record as Markdown (EXPERIMENTS.md)
  selfbench           harness wall-clock benchmark (see -json / -check / -reps)
experiments:`)
	fmt.Fprintf(os.Stderr, "  %s selfbench all\n", strings.Join(workload.Experiments.Names(), " "))
}

// list prints the registry: one line per experiment plus its params.
func list() {
	for _, e := range workload.Experiments.All() {
		fmt.Printf("%-12s %-22s %s\n", e.Name, e.Figure, e.Doc)
		for _, s := range e.ParamSpecs {
			q := ""
			if s.Quick != 0 {
				q = fmt.Sprintf(" (quick %d)", s.Quick)
			}
			fmt.Printf("             -p %s=%d%s  %s\n", s.Name, s.Default, q, s.Doc)
		}
	}
	fmt.Printf("%-12s %-22s %s\n", "selfbench", "—", "harness wall-clock per simulated op (see -json/-check)")
}

// experimentRecord is one experiment's structured result in a -json file.
type experimentRecord struct {
	Name   string           `json:"name"`
	Params map[string]int64 `json:"params"`
	Table  *workload.Table  `json:"table"`

	// paramsStr is the resolved params in declaration order — the
	// deterministic rendering -csv uses (Params is a map; iterating it
	// would make the CSV bytes flap run to run).
	paramsStr string
}

// figureRecord is the -json shape for figure runs (selfbench keeps its
// own selfbenchRecord shape).
type figureRecord struct {
	GoVersion   string             `json:"go_version"`
	Quick       bool               `json:"quick"`
	Experiments []experimentRecord `json:"experiments"`
}

func runExperiments(names []string, overrides paramFlags, quick bool, jsonPath, csvPath string, reps int, parallel bool, tracePath, profPath string) error {
	if len(names) == 1 && names[0] == "all" {
		names = workload.Experiments.Names()
	}
	// -trace requires the serial boot order the trace's process
	// numbering is defined by; a fork-parallel sweep boots machines from
	// a worker pool in host-scheduling order, which would make pid
	// assignment nondeterministic.
	if tracePath != "" && parallel {
		return fmt.Errorf("-trace cannot be combined with -parallel: machine boot order must be serial for the trace to be deterministic")
	}
	if tracePath != "" || profPath != "" {
		for _, n := range names {
			if n == "selfbench" {
				return fmt.Errorf("-trace/-prof do not apply to selfbench (it manages its own observability session)")
			}
		}
	}
	// selfbench's -json record is the BENCH_*.json trajectory format the
	// -check gate reads; figure runs write structured Table JSON. One
	// file can't be both, so mixing them under -json is an error rather
	// than a silent drop of either record.
	if jsonPath != "" && len(names) > 1 {
		for _, n := range names {
			if n == "selfbench" {
				return fmt.Errorf("-json: cannot mix selfbench with figure experiments in one run; invoke them separately")
			}
		}
	}
	// Every -p override must be well-formed and match at least one
	// selected experiment — catching a typo'd key or value up front
	// beats silently running everything at defaults.
	if err := workload.Experiments.CheckOverrides(names, overrides); err != nil {
		return err
	}
	var obsSess *workload.ObsSession
	if tracePath != "" || profPath != "" {
		sess, end := workload.BeginObs(tracePath != "", profPath != "")
		obsSess = sess
		defer end()
	}
	rec := figureRecord{GoVersion: runtime.Version(), Quick: quick}
	wroteSelfbench := false
	for _, name := range names {
		if name == "selfbench" {
			// selfbench owns the -json path when present: its record is
			// the BENCH_*.json trajectory format the -check gate reads.
			scale := 1
			if quick {
				scale = 8
			}
			if err := selfbench(jsonPath, scale, reps); err != nil {
				return fmt.Errorf("selfbench: %w", err)
			}
			wroteSelfbench = jsonPath != ""
			continue
		}
		exp, ok := workload.Experiments.Lookup(name)
		if !ok {
			return unknownExperiment(name)
		}
		// In a multi-name run "-p ops=…" tunes the experiments that have
		// the param (non-strict resolution skips the others); the
		// CheckOverrides pre-pass above guarantees each key matched
		// somewhere and each value parses. The fleet service resolves its
		// JSON params through this same path, strictly.
		p, sweepParam, sweepValues, err := exp.ResolveOverrides(quick, overrides, false)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if sweepParam == "" {
			t, err := exp.Run(p)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			t.Fprint(os.Stdout)
			rec.Experiments = append(rec.Experiments, experimentRecord{
				Name: name, Params: p.Map(), Table: t, paramsStr: p.String(),
			})
			continue
		}
		pts, err := workload.RunSweep(exp, p, sweepParam, sweepValues, parallel, 0)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		for _, pt := range pts {
			pp := p.Clone()
			if err := pp.Set(pt.Param, pt.Value); err != nil {
				return err
			}
			fmt.Printf("\n-- %s %s=%d --\n", name, pt.Param, pt.Value)
			pt.Table.Fprint(os.Stdout)
			rec.Experiments = append(rec.Experiments, experimentRecord{
				Name: name, Params: pp.Map(), Table: pt.Table, paramsStr: pp.String(),
			})
		}
	}
	if jsonPath != "" && len(rec.Experiments) > 0 && !wroteSelfbench {
		b, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(jsonPath, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if csvPath != "" && len(rec.Experiments) > 0 {
		if err := writeCSV(csvPath, rec.Experiments); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
	if obsSess != nil {
		if err := writeObs(obsSess, tracePath, profPath); err != nil {
			return err
		}
	}
	return nil
}

// writeObs renders the observability session's artifacts: the Chrome
// trace_event JSON (byte-deterministic — CI diffs two runs) and the
// profile as a collapsed-stack file plus a flat table on stdout.
func writeObs(s *workload.ObsSession, tracePath, profPath string) error {
	if s.Trace != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := s.Trace.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", tracePath)
	}
	if s.Profile != nil {
		if err := s.Profile.WriteFlat(os.Stdout); err != nil {
			return err
		}
		f, err := os.Create(profPath)
		if err != nil {
			return err
		}
		if err := s.Profile.WriteCollapsed(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", profPath)
	}
	return nil
}

// writeCSV renders experiment results in long form — one line per table
// cell, `experiment,params,table,row,column,value` — the shape that
// joins sweep points into a single plottable file. Child tables (the
// ablation sections) flatten into the same stream under their own
// titles. Cells render with %v: integers stay integers and floats use
// Go's shortest round-trip form, so the bytes are deterministic and CI
// can diff serial against fork-parallel sweep output.
func writeCSV(path string, recs []experimentRecord) error {
	var buf strings.Builder
	w := csv.NewWriter(&buf)
	if err := w.Write([]string{"experiment", "params", "table", "row", "column", "value"}); err != nil {
		return err
	}
	var emit func(rec experimentRecord, t *workload.Table) error
	emit = func(rec experimentRecord, t *workload.Table) error {
		for ri, row := range t.Rows {
			for ci, cell := range row {
				if err := w.Write([]string{
					rec.Name, rec.paramsStr, t.Title,
					strconv.Itoa(ri), t.Columns[ci].Name, fmt.Sprintf("%v", cell),
				}); err != nil {
					return err
				}
			}
		}
		for _, c := range t.Children {
			if err := emit(rec, c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, rec := range recs {
		if err := emit(rec, rec.Table); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(buf.String()), 0o644)
}

// unknownExperiment builds the error for a name the registry doesn't
// know: a closest-match suggestion plus the full list.
func unknownExperiment(name string) error {
	msg := fmt.Sprintf("unknown experiment %q", name)
	if s := workload.Experiments.Suggest(name); s != "" {
		msg += fmt.Sprintf("; did you mean %q?", s)
	}
	return fmt.Errorf("%s\nregistered: %s selfbench", msg, strings.Join(workload.Experiments.Names(), " "))
}

// validate parse-checks a figure -json record: every experiment entry
// must carry a non-empty table whose rows match its column schema. CI
// runs it after the `run all -quick -json` smoke step.
func validate(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rec, err := parseFigureRecord(b)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(rec.Experiments) == 0 {
		// An empty record must fail loudly: a gate that "validates" a
		// run which recorded nothing would wave every regression
		// through. This covers {"experiments": []} and a bare [] alike.
		return fmt.Errorf("%s: no records", path)
	}
	var check func(name string, t *workload.Table) error
	check = func(name string, t *workload.Table) error {
		if t == nil {
			return fmt.Errorf("%s: experiment %s has no table", path, name)
		}
		if len(t.Rows) == 0 && len(t.Children) == 0 {
			return fmt.Errorf("%s: experiment %s: empty table %q", path, name, t.Title)
		}
		for i, row := range t.Rows {
			if len(row) != len(t.Columns) {
				return fmt.Errorf("%s: experiment %s: table %q row %d has %d cells for %d columns",
					path, name, t.Title, i, len(row), len(t.Columns))
			}
		}
		for _, c := range t.Children {
			if err := check(name, c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, e := range rec.Experiments {
		if err := check(e.Name, e.Table); err != nil {
			return err
		}
	}
	fmt.Printf("validate: %s ok (%d experiments)\n", path, len(rec.Experiments))
	return nil
}

// report renders a -json figure record as the committed EXPERIMENTS.md:
// one section per experiment with its resolved params, every table (and
// ablation child section) as a Markdown table, notes as bullet lines.
// The output is a pure function of the record's simulated results — the
// record's go_version is deliberately omitted, and the virtual-clock
// figures are host-independent — so CI regenerates the file and diffs it
// against the committed copy byte-for-byte.
func report(path string, w io.Writer) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rec, err := parseFigureRecord(b)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(rec.Experiments) == 0 {
		return fmt.Errorf("%s: no records", path)
	}
	fmt.Fprintf(w, "# Adelie experiment results\n\n")
	fmt.Fprintf(w, "Generated by `benchtool report` from a recorded `-json` figure run")
	if rec.Quick {
		fmt.Fprintf(w, " (`-quick` op counts)")
	}
	fmt.Fprintf(w, ".\nDo not edit by hand — regenerate with:\n\n")
	fmt.Fprintf(w, "```\ngo run ./cmd/benchtool -quick -json figs.json run all\ngo run ./cmd/benchtool report figs.json > EXPERIMENTS.md\n```\n")
	var emit func(t *workload.Table, depth int)
	emit = func(t *workload.Table, depth int) {
		fmt.Fprintf(w, "\n%s %s\n\n", strings.Repeat("#", depth), t.Title)
		if len(t.Columns) > 0 && len(t.Rows) > 0 {
			for _, c := range t.Columns {
				head := c.Head
				if head == "" {
					head = c.Name
				}
				fmt.Fprintf(w, "| %s ", strings.TrimSpace(head))
			}
			fmt.Fprintf(w, "|\n")
			for range t.Columns {
				fmt.Fprintf(w, "|---")
			}
			fmt.Fprintf(w, "|\n")
			for _, row := range t.Rows {
				for _, cell := range row {
					fmt.Fprintf(w, "| %s ", reportCell(cell))
				}
				fmt.Fprintf(w, "|\n")
			}
		}
		for _, n := range t.Notes {
			fmt.Fprintf(w, "- %s\n", n)
		}
		for _, c := range t.Children {
			emit(c, depth+1)
		}
	}
	for _, e := range rec.Experiments {
		params := make([]string, 0, len(e.Params))
		for _, k := range sortedParamKeys(e.Params) {
			params = append(params, fmt.Sprintf("%s=%d", k, e.Params[k]))
		}
		fmt.Fprintf(w, "\n## %s", e.Name)
		if len(params) > 0 {
			fmt.Fprintf(w, " (%s)", strings.Join(params, " "))
		}
		fmt.Fprintf(w, "\n")
		if e.Table != nil {
			emit(e.Table, 3)
		}
	}
	return nil
}

// reportCell renders one table cell for Markdown. JSON decoding turns
// every number into float64; integral values print as integers and the
// rest round to six significant digits — deterministic (the inputs are
// the virtual-clock figures, identical on every host) and readable,
// since the raw shortest-round-trip float form runs to 17 digits.
func reportCell(cell any) string {
	f, ok := cell.(float64)
	if !ok {
		return fmt.Sprintf("%v", cell)
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', 0, 64)
	}
	return strconv.FormatFloat(f, 'g', 6, 64)
}

func sortedParamKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// parseFigureRecord decodes a -json figure capture. The canonical shape
// is the figureRecord object benchtool writes; a bare JSON array of
// experiment records is accepted too, so hand-assembled captures (and
// the degenerate empty array) hit the "no records" gate instead of an
// unmarshal type error.
func parseFigureRecord(b []byte) (figureRecord, error) {
	var rec figureRecord
	objErr := json.Unmarshal(b, &rec)
	if objErr == nil {
		return rec, nil
	}
	if err := json.Unmarshal(b, &rec.Experiments); err != nil {
		return figureRecord{}, objErr
	}
	return rec, nil
}

// ---------------------------------------------------------------------------
// selfbench + the -check regression gate (the BENCH_*.json trajectory).

// ddBenchKey is the hot-path figure the performance trajectory tracks;
// nicBenchKey is the NIC RX→ISR→TX round-trip path added with the
// device bus; forkBenchKey and sweepBenchKey are the snapshot/fork
// figures (machine fork latency, amortized wall time per point of a
// fork-parallel 16-point Fig-5b sweep). All are gated by -check, each
// only against baselines that recorded it.
const (
	ddBenchKey    = "fig5b_dd64_picret"
	nicBenchKey   = "nic_rx_irq_roundtrip"
	forkBenchKey  = "fork_us"
	sweepBenchKey = "sweep16_amortized_ms"
	serverWallKey = "server_mq4_roundtrip"
	serverRPSKey  = "server_rps"
	serverP99Key  = "server_p99_us"
	// serviceRPSKey and serviceP99Key are the fleet-service figures: host
	// throughput and tail latency of the adelie-simd HTTP path under ~1k
	// concurrent clients against a 4-machine fork pool.
	serviceRPSKey = "service_rps"
	serviceP99Key = "service_p99_us"
	// ddTracedKey is the dd path re-run with the event tracer attached,
	// in host microseconds per simulated op — the observability overhead
	// gate (target: within 5% of the untraced dd figure).
	ddTracedKey = "dd_traced_us"
	// ddChainPctKey / ddIChainPctKey are the dd hot-path chain rates:
	// the percentage of retired basic blocks entered via any trace link,
	// and via the monomorphic indirect target cache specifically. Both
	// gate higher-is-better — a collapse (with unchanged simulated MBps)
	// means the hot path fell back to dispatch, the regression the
	// wall-clock gate alone can't attribute.
	ddChainPctKey  = "fig5b_dd64_picret_chain_pct"
	ddIChainPctKey = "fig5b_dd64_picret_ichain_pct"
)

// gatedPath is one metric the -check gate compares: a key, which record
// map it lives in, its unit for reporting, and its direction — most
// paths are wall-clock or latency figures where lower is better, but
// the server's simulated throughput gates the other way.
type gatedPath struct {
	key     string
	metrics bool // key lives in Metrics, not WallNsOp
	unit    string
	higher  bool // higher is better (throughput); default lower-is-better
}

var gatedPaths = []gatedPath{
	{ddBenchKey, false, "ns/op", false},
	{nicBenchKey, false, "ns/op", false},
	{forkBenchKey, true, "us", false},
	{sweepBenchKey, true, "ms", false},
	{serverWallKey, false, "ns/op", false},
	{serverRPSKey, true, "rps", true},
	{serverP99Key, true, "us", false},
	{serviceRPSKey, true, "rps", true},
	{serviceP99Key, true, "us", false},
	{ddTracedKey, true, "us", false},
	{ddChainPctKey, true, "%", true},
	{ddIChainPctKey, true, "%", true},
}

// regressionMargin is how much slower than the best recorded baseline
// the gated run may be before the check fails, plus a label naming where
// that margin came from — regression messages cite the label, so a CI
// failure says which policy actually applied rather than leaving the
// reader to guess whether BENCHGATE_MARGIN_PCT was set. The default is
// the repo's 20% local policy; BENCHGATE_MARGIN_PCT overrides it (e.g.
// 150 on a CI fleet whose hardware differs from the machines that
// recorded the baselines). A malformed or non-positive override is
// ignored, and the label says so.
func regressionMargin() (float64, string) {
	if s := os.Getenv("BENCHGATE_MARGIN_PCT"); s != "" {
		var pct float64
		if _, err := fmt.Sscanf(s, "%f", &pct); err == nil && pct > 0 {
			return 1 + pct/100, "BENCHGATE_MARGIN_PCT=" + s
		}
		return 1.20, fmt.Sprintf("local default; ignored invalid BENCHGATE_MARGIN_PCT=%q", s)
	}
	return 1.20, "local default"
}

func readRecord(path string) (selfbenchRecord, error) {
	var rec selfbenchRecord
	b, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	return rec, json.Unmarshal(b, &rec)
}

// checkRegression fails if any gated path in the given selfbench record
// regressed more than regressionMargin versus the fastest committed
// BENCH_*.json baseline that recorded that path. Baselines predating a
// metric (the NIC round-trip, the fork figures) simply don't constrain
// it. Every gated metric is compared before the verdict, and the error
// names each offender with how far past the margin it landed — a gate
// that only says "regressed" forces a re-run to learn what and by how
// much.
func checkRegression(path string) error {
	cur, err := readRecord(path)
	if err != nil {
		return err
	}
	lookup := func(rec selfbenchRecord, g gatedPath) (float64, bool) {
		if g.metrics {
			v, ok := rec.Metrics[g.key]
			return v, ok
		}
		v, ok := rec.WallNsOp[g.key]
		return v, ok
	}
	// The record under check comes from the current selfbench, which
	// always emits every gated path — a missing key means the gate
	// would silently stop gating, so fail loudly instead. (Baselines
	// may legitimately predate a metric; see below.)
	for _, g := range gatedPaths {
		if _, ok := lookup(cur, g); !ok {
			return fmt.Errorf("%s: no %q measurement", path, g.key)
		}
	}
	baselineNames, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return err
	}
	baselines := make(map[string]selfbenchRecord, len(baselineNames))
	for _, b := range baselineNames {
		rec, err := readRecord(b)
		if err != nil {
			return fmt.Errorf("%s: %w", b, err)
		}
		baselines[b] = rec
	}
	margin, marginSrc := regressionMargin()
	var regressed []string
	for _, g := range gatedPaths {
		curV, _ := lookup(cur, g)
		bestV, bestName := 0.0, ""
		better := func(v, best float64) bool { return v < best }
		if g.higher {
			better = func(v, best float64) bool { return v > best }
		}
		for _, b := range baselineNames {
			if v, ok := lookup(baselines[b], g); ok && (bestName == "" || better(v, bestV)) {
				bestV, bestName = v, b
			}
		}
		if bestName == "" {
			fmt.Printf("check: no BENCH_*.json baselines with %q; nothing to compare\n", g.key)
			continue
		}
		bad := curV > bestV*margin
		lostPct := (curV/bestV - 1) * 100
		if g.higher {
			bad = curV < bestV/margin
			lostPct = (bestV/curV - 1) * 100
		}
		if bad {
			regressed = append(regressed, fmt.Sprintf(
				"%s regressed %.1f%%: %.1f %s vs best baseline %.1f %s (%s, margin %.0f%% from %s)",
				g.key, lostPct, curV, g.unit, bestV, g.unit, bestName, (margin-1)*100, marginSrc))
			continue
		}
		fmt.Printf("check: %s %.1f %s within %.0f%% (%s) of best baseline %.1f %s (%s)\n",
			g.key, curV, g.unit, (margin-1)*100, marginSrc, bestV, g.unit, bestName)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d gated metric(s) regressed:\n  %s",
			len(regressed), strings.Join(regressed, "\n  "))
	}
	return nil
}

// selfbenchRecord is the JSON shape of one recorded harness benchmark.
type selfbenchRecord struct {
	GoVersion string             `json:"go_version"`
	Quick     bool               `json:"quick"`
	Reps      int                `json:"reps,omitempty"` // repetitions per path (min recorded)
	WallNsOp  map[string]float64 `json:"wall_ns_per_op"` // host ns per simulated op
	Metrics   map[string]float64 `json:"metrics"`        // simulated headline metrics
}

// selfbench times the harness on the hot interpreter paths. Wall-clock
// per-op figures are what the decoded-instruction cache, lock-light
// translation path and superblock trace linking are meant to improve;
// the simulated metrics ride along as a sanity check that optimization
// did not change results. With reps > 1 each path runs that many times
// and the minimum wall time is recorded — the standard noise-robust
// estimator on shared hosts (the simulated metrics are deterministic,
// so repetition cannot change them).
func selfbench(jsonPath string, scale, reps int) error {
	fmt.Printf("\n== %s ==\n", "selfbench — harness wall-clock per simulated operation")
	if reps < 1 {
		reps = 1
	}
	rec := selfbenchRecord{
		GoVersion: runtime.Version(),
		Quick:     scale > 1,
		Reps:      reps,
		WallNsOp:  map[string]float64{},
		Metrics:   map[string]float64{},
	}
	// timeMin records the minimum wall ns/op over reps runs of f.
	timeMin := func(key string, ops int, f func() error) error {
		for r := 0; r < reps; r++ {
			start := time.Now()
			if err := f(); err != nil {
				return err
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(ops)
			if r == 0 || ns < rec.WallNsOp[key] {
				rec.WallNsOp[key] = ns
			}
		}
		return nil
	}

	ddOps := 1600 / scale
	err := timeMin("fig5b_dd64_picret", ddOps, func() error {
		dd, err := workload.DD(workload.CfgPICRet, 64, ddOps)
		if err != nil {
			return err
		}
		rec.Metrics["fig5b_dd64_picret_mbps"] = dd.MBps
		// Chain rates: share of retired basic blocks entered by following
		// a trace link instead of returning to the dispatch loop, and the
		// indirect-cache share of that specifically. Both are gated
		// higher-is-better by -check (see ddChainPctKey).
		if dd.Blocks > 0 {
			rec.Metrics[ddChainPctKey] = 100 * float64(dd.ChainedBlocks) / float64(dd.Blocks)
			rec.Metrics[ddIChainPctKey] = 100 * float64(dd.IndirectChained) / float64(dd.Blocks)
		}
		return nil
	})
	if err != nil {
		return err
	}

	// The same dd path with the event tracer recording — the
	// observability overhead figure. Each rep pairs one untraced and
	// one traced run back to back, so host-load drift between the two
	// legs cancels out of the reported ratio (both take min-over-reps,
	// and the paired untraced runs can only improve the wall figure
	// recorded above). The tracer must be free when disabled (the
	// untraced runs execute the exact binary that contains the tracing
	// hooks) and near-free when enabled; the trace's simulated figure
	// must match the untraced run bit-for-bit, checked on every rep.
	var ratios []float64
	ddPairs := 5 * reps
	for r := 0; r < ddPairs; r++ {
		// A forced collection before each leg keeps the GC debt carried
		// into the timed window identical for both legs; without it the
		// traced leg also pays for whatever garbage the previous leg
		// left behind. The legs alternate order across reps so frequency
		// scaling or cache warmth from leg position cancels too.
		runUntraced := func() (float64, error) {
			runtime.GC()
			start := time.Now()
			if _, err := workload.DD(workload.CfgPICRet, 64, ddOps); err != nil {
				return 0, err
			}
			unt := float64(time.Since(start).Nanoseconds()) / float64(ddOps)
			if unt < rec.WallNsOp[ddBenchKey] {
				rec.WallNsOp[ddBenchKey] = unt
			}
			return unt, nil
		}
		runTraced := func() (float64, error) {
			runtime.GC()
			_, endObs := workload.BeginObs(true, false)
			start := time.Now()
			dd, err := workload.DD(workload.CfgPICRet, 64, ddOps)
			ns := float64(time.Since(start).Nanoseconds()) / float64(ddOps)
			endObs()
			if err != nil {
				return 0, err
			}
			if dd.MBps != rec.Metrics["fig5b_dd64_picret_mbps"] {
				return 0, fmt.Errorf("tracing changed the dd figure: %.3f MB/s traced vs %.3f untraced",
					dd.MBps, rec.Metrics["fig5b_dd64_picret_mbps"])
			}
			return ns, nil
		}
		var unt, tra float64
		var err error
		if r%2 == 0 {
			if unt, err = runUntraced(); err == nil {
				tra, err = runTraced()
			}
		} else {
			if tra, err = runTraced(); err == nil {
				unt, err = runUntraced()
			}
		}
		if err != nil {
			return err
		}
		ratios = append(ratios, tra/unt)
	}
	// The overhead figure is the median pair ratio: each rep's two legs
	// ran back to back, so a host-load burst lands on both or neither,
	// and the median discards the reps where it split them — unlike
	// min-over-independent-legs, which lets a burst on one leg
	// masquerade as tracing cost (or, taking min ratio, hide it). The
	// recorded traced figure is that ratio applied to the best untraced
	// wall time, so dd_traced_us vs the fig5b wall figure reproduces the
	// drift-cancelled overhead estimate rather than comparing one noisy
	// traced sample against a min taken over many untraced ones.
	sort.Float64s(ratios)
	med := ratios[len(ratios)/2]
	rec.Metrics[ddTracedKey] = med * rec.WallNsOp[ddBenchKey] / 1e3
	fmt.Printf("dd traced overhead: %.1f%% over untraced (median of %d paired reps)\n",
		(med-1)*100, len(ratios))

	ioctlOps := 12000 / scale
	err = timeMin("fig9_ioctl_rerandstack", ioctlOps, func() error {
		io, err := workload.Ioctl("wrappers+stack", workload.CfgRerandStack, ioctlOps)
		if err != nil {
			return err
		}
		rec.Metrics["fig9_ioctl_rerandstack_mops"] = io.MopsPerSec
		return nil
	})
	if err != nil {
		return err
	}

	nvmeOps := 2400 / scale
	err = timeMin("fig6_nvme_1ms", nvmeOps, func() error {
		nv, err := workload.NVMeDirectRead(workload.Period1ms, false, nvmeOps)
		if err != nil {
			return err
		}
		rec.Metrics["fig6_nvme_1ms_mbps"] = nv.MBps
		return nil
	})
	if err != nil {
		return err
	}

	oltpTxs := 240 / scale
	err = timeMin("fig7_oltp_5ms_c100", oltpTxs, func() error {
		ol, err := workload.OLTP(workload.Period5ms, false, 100, oltpTxs)
		if err != nil {
			return err
		}
		rec.Metrics["fig7_oltp_5ms_c100_tps"] = ol.TPS
		return nil
	})
	if err != nil {
		return err
	}

	// NIC RX round-trip: loadgen frame → RX ring → IRQ → NAPI ISR drain
	// → server response frame, per-frame interrupts (the latency-bound
	// end of the coalescing sweep).
	nicOps := 2400 / scale
	err = timeMin(nicBenchKey, nicOps, func() error {
		nic, err := workload.NICCoalesce(1, 100, nicOps)
		if err != nil {
			return err
		}
		rec.Metrics["nic_rx_irq_latency_us"] = nic.AvgIRQLatUs
		rec.Metrics["nic_rx_irq_dropped"] = float64(nic.Dropped)
		return nil
	})
	if err != nil {
		return err
	}

	// Server round-trip on the per-vCPU interrupt path: RSS frames across
	// 4 NIC queues (vector q pinned to vCPU q), an interrupt-completed
	// NVMe read per request, response TX — under 1 ms re-randomization.
	// Wall ns/op gates the host cost of multi-vCPU delivery; the
	// simulated throughput and p99 gate the figure itself (deterministic,
	// so any drift is a semantic change, not noise).
	serverOps := 1920 / scale
	err = timeMin(serverWallKey, serverOps, func() error {
		sr, err := workload.Server(4, 4, serverOps, 1000)
		if err != nil {
			return err
		}
		rec.Metrics[serverRPSKey] = sr.RPS
		rec.Metrics[serverP99Key] = sr.P99Us
		rec.Metrics["server_irq_vcpus"] = float64(sr.IRQVCPUs)
		return nil
	})
	if err != nil {
		return err
	}

	sc, err := workload.Scalability([]int{20}, 20)
	if err != nil {
		return err
	}
	rec.Metrics["scalability_20mods_corepct"] = sc[0].CPUPct

	// Machine fork latency: microseconds to fork+release one machine from
	// a frozen snapshot template (the Fig-5 dd shape: PIC+retpoline,
	// ext4 loaded). This is the number that makes the parallel sweep
	// runner's boots ~free; min over reps like the wall paths.
	tmpl, err := workload.NewBenchMachine(workload.CfgPICRet, 5, "ext4")
	if err != nil {
		return err
	}
	if err := tmpl.Snapshot(); err != nil {
		return err
	}
	const nForks = 64
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < nForks; i++ {
			f, err := tmpl.Fork()
			if err != nil {
				return err
			}
			f.Release()
		}
		us := float64(time.Since(start).Nanoseconds()) / 1e3 / nForks
		if r == 0 || us < rec.Metrics[forkBenchKey] {
			rec.Metrics[forkBenchKey] = us
		}
	}
	tmpl.Release()

	// 16-point Fig-5b ops sweep (the paper's "-p ops=100..1600" shape,
	// ops scaled under -quick): amortized wall ms per point fork-parallel,
	// with the serial/cold-boot sweep alongside so the recorded speedup
	// documents what snapshot/fork parallelism buys end-to-end. One run
	// each — the 16-point amortization already averages the noise a
	// reps-min would fight, and the serial leg is too slow to repeat.
	sweepExp, ok := workload.Experiments.Lookup("fig5b")
	if !ok {
		return fmt.Errorf("fig5b not registered")
	}
	sweepVals := make([]int64, 16)
	for i := range sweepVals {
		sweepVals[i] = int64((i + 1) * 100 / scale)
	}
	sweepBase := sweepExp.Params(scale > 1)
	start := time.Now()
	serialPts, err := workload.RunSweep(sweepExp, sweepBase, "ops", sweepVals, false, 0)
	if err != nil {
		return err
	}
	serialMs := float64(time.Since(start).Nanoseconds()) / 1e6 / float64(len(sweepVals))
	start = time.Now()
	parPts, err := workload.RunSweep(sweepExp, sweepBase, "ops", sweepVals, true, 0)
	if err != nil {
		return err
	}
	parMs := float64(time.Since(start).Nanoseconds()) / 1e6 / float64(len(sweepVals))
	for i := range serialPts {
		var a, b strings.Builder
		serialPts[i].Table.Fprint(&a)
		parPts[i].Table.Fprint(&b)
		if a.String() != b.String() {
			return fmt.Errorf("sweep point ops=%d: fork-parallel table diverges from serial", sweepVals[i])
		}
	}
	rec.Metrics[sweepBenchKey] = parMs
	rec.Metrics["sweep16_serial_ms"] = serialMs
	rec.Metrics["sweep16_speedup"] = serialMs / parMs

	// Fleet-service throughput: an in-process adelie-simd (pool of 4
	// fork-served machines behind the lease manager) hammered by the load
	// generator with ~1k concurrent fig9 requests. Gates the end-to-end
	// HTTP→lease→fork→experiment→Table path; every request must be served
	// from the fork pool (a cold boot here means the pool regressed to
	// per-request machine boots). One run — thousands of requests already
	// amortize the noise a reps-min would fight.
	svc := service.New(service.Config{PoolSize: 4, QueueCap: 4096})
	ts := httptest.NewServer(svc.Handler())
	lr, err := service.RunLoad(service.LoadOpts{
		BaseURL:    ts.URL,
		Experiment: "fig9", Quick: true, Params: map[string]string{"ops": "50"},
		Requests: 2048 / scale, Concurrency: 1024 / scale,
	})
	ts.Close()
	if err != nil {
		svc.Close()
		return err
	}
	svcStats := svc.StatsNow()
	svc.Close()
	if lr.Failed > 0 {
		return fmt.Errorf("service load: %d/%d requests failed (first: %s)", lr.Failed, lr.Requests, lr.FirstError)
	}
	if svcStats.ColdBoots != 0 {
		return fmt.Errorf("service load: %d cold boots; every request must be fork-served", svcStats.ColdBoots)
	}
	rec.Metrics[serviceRPSKey] = lr.RPS
	rec.Metrics[serviceP99Key] = lr.P99Us

	fmt.Printf("%-26s %16s\n", "path", "host ns/op")
	for _, k := range sortedKeys(rec.WallNsOp) {
		fmt.Printf("%-26s %16.0f\n", k, rec.WallNsOp[k])
	}
	fmt.Printf("%-34s %12s\n", "simulated metric", "value")
	for _, k := range sortedKeys(rec.Metrics) {
		fmt.Printf("%-34s %12.3f\n", k, rec.Metrics[k])
	}

	if jsonPath != "" {
		b, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(jsonPath, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
