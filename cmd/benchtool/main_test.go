package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTemp writes content to a file under t.TempDir and returns its path.
func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "rec.json")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestValidateEmptyRecordsIsAnError: a capture with nothing in it must
// fail the gate — CI diffs and validates these files, and an empty one
// validating "ok" would wave every regression through silently.
func TestValidateEmptyRecordsIsAnError(t *testing.T) {
	for _, content := range []string{
		`[]`,
		`{}`,
		`{"experiments": []}`,
		`{"experiments": null}`,
	} {
		err := validate(writeTemp(t, content))
		if err == nil {
			t.Errorf("validate(%s) = nil, want 'no records' error", content)
			continue
		}
		if !strings.Contains(err.Error(), "no records") {
			t.Errorf("validate(%s) error = %q, want it to name 'no records'", content, err)
		}
	}
}

func TestValidateMalformedJSON(t *testing.T) {
	if err := validate(writeTemp(t, `{"experiments": 7}`)); err == nil {
		t.Error("validate accepted a non-array experiments field")
	}
	if err := validate(writeTemp(t, `not json`)); err == nil {
		t.Error("validate accepted non-JSON input")
	}
	if err := validate(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("validate accepted a missing file")
	}
}

const oneExperiment = `{"experiments": [{"name": "fig5b", "params": {"ops": 4},
  "table": {"title": "T", "columns": [{"name": "a"}, {"name": "b"}], "rows": [[1, 2]]}}]}`

// TestValidateWellFormedRecord covers both accepted shapes: the
// figureRecord object benchtool writes, and a bare array of experiment
// records.
func TestValidateWellFormedRecord(t *testing.T) {
	if err := validate(writeTemp(t, oneExperiment)); err != nil {
		t.Errorf("object form rejected: %v", err)
	}
	arr := `[{"name": "fig5b", "params": {}, "table": {"title": "T",
	  "columns": [{"name": "a"}], "rows": [[1]]}}]`
	if err := validate(writeTemp(t, arr)); err != nil {
		t.Errorf("array form rejected: %v", err)
	}
}

// TestValidateSchemaMismatch: a row whose cell count disagrees with the
// column schema must fail.
func TestValidateSchemaMismatch(t *testing.T) {
	bad := `{"experiments": [{"name": "x", "params": {},
	  "table": {"title": "T", "columns": [{"name": "a"}, {"name": "b"}], "rows": [[1]]}}]}`
	if err := validate(writeTemp(t, bad)); err == nil {
		t.Error("validate accepted a row/column mismatch")
	}
	empty := `{"experiments": [{"name": "x", "params": {},
	  "table": {"title": "T", "columns": [{"name": "a"}], "rows": []}}]}`
	if err := validate(writeTemp(t, empty)); err == nil {
		t.Error("validate accepted an empty table")
	}
	missing := `{"experiments": [{"name": "x", "params": {}}]}`
	if err := validate(writeTemp(t, missing)); err == nil {
		t.Error("validate accepted an experiment without a table")
	}
}
