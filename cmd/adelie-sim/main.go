// Command adelie-sim boots the simulated testbed, loads a set of drivers
// as re-randomizable modules, runs continuous re-randomization for a
// while under live traffic, and prints the artifact-style dmesg status —
// the interactive demonstration of the paper's system working end to end.
//
//	adelie-sim -modules e1000e,nvme -period 20ms -duration 2s
//
// mirrors the artifact's `modprobe randmod module_names=e1000,nvme
// rand_period=20`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"adelie/internal/drivers"
	"adelie/internal/kernel"
	"adelie/internal/sim"
)

func main() {
	modules := flag.String("modules", "e1000e,nvme", "comma-separated drivers to re-randomize")
	period := flag.Duration("period", 20*time.Millisecond, "re-randomization period")
	duration := flag.Duration("duration", 2*time.Second, "how long to run")
	seed := flag.Int64("seed", 1, "rng seed")
	flag.Parse()

	if err := run(*modules, *period, *duration, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "adelie-sim:", err)
		os.Exit(1)
	}
}

func run(modules string, period, duration time.Duration, seed int64) error {
	m, err := sim.NewMachine(sim.Config{NumCPUs: 20, Seed: seed, KASLR: kernel.KASLRFull64})
	if err != nil {
		return err
	}
	opts := drivers.BuildOpts{PIC: true, Retpoline: true, Rerand: true, StackRerand: true, RetEncrypt: true}
	// Split and trim the module list once; every loop below reuses the
	// cleaned names.
	var names []string
	for _, name := range strings.Split(modules, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	for _, name := range names {
		mod, err := m.LoadDriver(name, opts)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %-8s movable@%#x (%d pages) immovable@%#x  key=%#x\n",
			mod.Name, mod.Base(), mod.Movable.Pages, mod.Immovable.Base, mod.Key())
	}
	for _, name := range names {
		switch name {
		case "nvme":
			if err := m.InitNVMe(); err != nil {
				return err
			}
		case "e1000e", "e1000", "ena":
			if _, err := m.InitNIC(name); err != nil {
				return err
			}
		case "xhci":
			if err := m.InitXHCI(); err != nil {
				return err
			}
		}
	}
	m.K.Printk("Randomize: kthread started")

	// Drive traffic while the randomizer runs on its wall-clock period,
	// as the artifact's benchmark script does.
	deadline := time.Now().Add(duration)
	next := time.Now().Add(period)
	calls := 0
	buf, err := m.K.Kmalloc(512)
	if err != nil {
		return err
	}
	for time.Now().Before(deadline) {
		for _, name := range names {
			var err error
			switch name {
			case "nvme":
				_, err = m.Call("nvme_read", buf, 1, 512)
			case "dummy":
				_, err = m.Call("dummy_ioctl", 0)
			case "ext4":
				_, err = m.Call("ext4_get_block", 1, uint64(calls%1024))
			case "fuse":
				_, err = m.Call("fuse_dispatch", 1)
			case "xhci":
				_, err = m.Call("xhci_poll")
			case "e1000e", "e1000", "ena":
				_, err = m.Call(name+"_xmit", buf, 256, uint64(calls))
			}
			if err != nil {
				return fmt.Errorf("driver call during re-randomization: %w", err)
			}
			calls++
		}
		if time.Now().After(next) {
			if _, err := m.R.Step(); err != nil {
				return err
			}
			next = next.Add(period)
		}
	}
	m.K.SMR.Flush()
	m.R.LogDmesg()

	fmt.Printf("\n%d driver calls completed under continuous re-randomization\n", calls)
	fmt.Println("\n$ dmesg")
	for _, line := range m.K.Dmesg() {
		fmt.Println(" ", line)
	}
	for _, name := range names {
		if mod := m.Module(name); mod != nil {
			fmt.Printf("%-8s now at %#x after %d moves (pages remapped: %d, GOT entries slid: %d)\n",
				mod.Name, mod.Base(), mod.Rerandomizations, mod.PagesRemapped, mod.GotEntriesMoved)
		}
	}
	return nil
}
