// Command gadgetscan is the Ropper-analog CLI: it scans AK64 module
// object files (or the built-in driver suite) for ROP gadgets, prints the
// class distribution and attempts to build an NX-disabling chain — the
// per-module analysis behind Fig. 10 and Table 2.
//
//	gadgetscan -builtin nvme            # scan a built-in driver
//	gadgetscan -pic -retpoline mod.ako  # scan an encoded object file
//	gadgetscan -emit nvme.ako -builtin nvme
package main

import (
	"flag"
	"fmt"
	"os"

	"adelie/internal/attack"
	"adelie/internal/drivers"
	"adelie/internal/elfmod"
)

func main() {
	builtin := flag.String("builtin", "", "scan a built-in driver (dummy, nvme, e1000e, ...)")
	pic := flag.Bool("pic", true, "build with the PIC model")
	retpoline := flag.Bool("retpoline", true, "build with retpoline")
	rerand := flag.Bool("rerand", false, "apply the re-randomization plugin")
	emit := flag.String("emit", "", "write the built object to this path")
	verbose := flag.Bool("v", false, "print every gadget")
	flag.Parse()

	obj, err := loadObject(*builtin, *pic, *retpoline, *rerand, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "gadgetscan:", err)
		os.Exit(1)
	}
	if *emit != "" {
		if err := os.WriteFile(*emit, obj.Encode(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "gadgetscan:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *emit, len(obj.Encode()))
	}

	fmt.Printf("module %s  pic=%v retpoline=%v rerandomizable=%v  size=%d bytes\n",
		obj.Name, obj.PIC, obj.Retpoline, obj.Rerandomizable, obj.TotalSize())

	total := attack.Distribution{}
	var allGadgets []attack.Gadget
	for _, sec := range obj.Sections {
		if !sec.Kind.Executable() {
			continue
		}
		gs := attack.Scan(sec.Data, 0x10000)
		allGadgets = append(allGadgets, gs...)
		d := attack.Distribute(gs)
		fmt.Printf("  %-12s %6d bytes  %5d gadgets\n", sec.Kind, len(sec.Data), d.Total())
		for c, n := range d {
			total[c] += n
		}
	}
	fmt.Println("gadget classes:")
	for _, c := range total.Classes() {
		fmt.Printf("  %-8s %6d\n", c, total[c])
	}
	if *verbose {
		for _, g := range allGadgets {
			fmt.Println(" ", g)
		}
	}

	ch, err := attack.BuildNXChain(allGadgets, 0xFFFF000000000000, [3]uint64{0, 0, 7})
	if err != nil {
		fmt.Println("NX-disable chain: NOT constructible —", err)
		return
	}
	fmt.Printf("NX-disable chain: constructible (%v), %d payload words\n", ch.Quality, len(ch.Words))
	for _, g := range ch.Gadgets {
		fmt.Println("  uses:", g)
	}
}

func loadObject(builtin string, pic, retpoline, rerand bool, args []string) (*elfmod.Object, error) {
	if builtin != "" {
		mk, ok := drivers.All()[builtin]
		if !ok {
			return nil, fmt.Errorf("unknown built-in driver %q", builtin)
		}
		return drivers.Build(mk(), drivers.BuildOpts{
			PIC: pic, Retpoline: retpoline, Rerand: rerand,
			StackRerand: rerand, RetEncrypt: rerand,
		})
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("need exactly one object file or -builtin")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	return elfmod.Decode(data)
}
