// Command simload is the load generator for adelie-simd: it hammers the
// daemon's /v1/run endpoint with many concurrent requests over a pool of
// worker connections and prints throughput and tail latency — the
// "millions of users" story made measurable against the fork-served
// machine pool.
//
//	simload -addr http://127.0.0.1:8787 -n 1000 -c 128 -experiment fig9 -quick -p ops=50
//
// Exit status is non-zero if any request failed (or none succeeded), so
// CI can assert the service answered under load.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"adelie/internal/service"
	"adelie/internal/workload"
)

// paramFlags collects repeated -p key=val overrides (benchtool's flag
// shape; values resolve server-side through the same workload path).
type paramFlags []string

func (p *paramFlags) String() string { return strings.Join(*p, ",") }
func (p *paramFlags) Set(s string) error {
	if _, _, err := workload.SplitOverride(s); err != nil {
		return err
	}
	*p = append(*p, s)
	return nil
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8787", "adelie-simd base URL")
	experiment := flag.String("experiment", "fig9", "experiment to request")
	quick := flag.Bool("quick", false, "request quick-scaled parameter defaults")
	n := flag.Int("n", 1000, "total requests")
	c := flag.Int("c", 128, "concurrent worker connections")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-request timeout (queue wait included)")
	jsonOut := flag.Bool("json", false, "print the report as JSON instead of text")
	var overrides paramFlags
	flag.Var(&overrides, "p", "experiment parameter override (key=val, repeatable)")
	flag.Parse()

	params := map[string]string{}
	for _, kv := range overrides {
		k, v, _ := workload.SplitOverride(kv)
		params[k] = v
	}
	rep, err := service.RunLoad(service.LoadOpts{
		BaseURL: *addr, Experiment: *experiment, Params: params, Quick: *quick,
		Requests: *n, Concurrency: *c, Timeout: *timeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simload:", err)
		os.Exit(1)
	}
	rep.RPSPerCore = rep.RPS / float64(runtime.GOMAXPROCS(0))

	if *jsonOut {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "simload:", err)
			os.Exit(1)
		}
		fmt.Println(string(b))
	} else {
		fmt.Printf("simload: %d requests, %d workers, experiment %s against %s\n",
			rep.Requests, *c, *experiment, *addr)
		fmt.Printf("  ok %d  failed %d  (%s)\n", rep.OK, rep.Failed, statusLine(rep.StatusCounts))
		fmt.Printf("  wall %.2fs  rps %.1f  rps/core %.1f (%d cores)\n",
			rep.ElapsedUs/1e6, rep.RPS, rep.RPSPerCore, runtime.GOMAXPROCS(0))
		fmt.Printf("  latency p50 %.1fms  p99 %.1fms\n", rep.P50Us/1e3, rep.P99Us/1e3)
		fmt.Printf("  queue wait p50 %.1fms  p99 %.1fms\n", rep.QueueWaitP50Us/1e3, rep.QueueWaitP99Us/1e3)
		if rep.FirstError != "" {
			fmt.Printf("  first error: %s\n", rep.FirstError)
		}
	}
	if rep.OK == 0 || rep.Failed > 0 {
		os.Exit(1)
	}
}

// statusLine renders the status-code histogram compactly ("200×998 503×2").
func statusLine(counts map[int]int) string {
	codes := make([]int, 0, len(counts))
	for c := range counts {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	parts := make([]string, 0, len(codes))
	for _, c := range codes {
		parts = append(parts, fmt.Sprintf("%d×%d", c, counts[c]))
	}
	return strings.Join(parts, " ")
}
