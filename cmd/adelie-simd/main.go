// Command adelie-simd is the fleet-scale simulation daemon: a
// long-running server owning a pool of snapshot-forked machines and
// serving experiment requests over HTTP/JSON (internal/service).
//
//	adelie-simd -addr :8787 -pool 4 -queue 1024 -lease-ttl 2m
//
//	curl -s localhost:8787/v1/experiments | jq '.experiments[].name'
//	curl -s localhost:8787/v1/run -d '{"experiment":"fig5b","quick":true}' | jq .table
//	curl -s localhost:8787/v1/sweep -d '{"experiment":"fig5b","params":{"ops":"100..400:100"}}'
//	curl -s localhost:8787/v1/statsz
//
// Every request leases a machine from the pool — a ~200µs copy-on-write
// fork of a lazily-booted frozen template, bit-identical to a cold boot
// — runs the experiment, and returns the registry's Table JSON exactly
// as `benchtool run` would. SIGINT/SIGTERM drains gracefully: no new
// admissions, every admitted request completes, then the final statsz
// snapshot prints. cmd/simload is the matching load generator.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adelie/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8787", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the resolved listen address to this file (scripts + port-0 runs)")
	pool := flag.Int("pool", 4, "machine pool size (concurrently leased forks)")
	queue := flag.Int("queue", 1024, "request queue capacity (FIFO; beyond it requests shed with 503)")
	leaseTTL := flag.Duration("lease-ttl", 2*time.Minute, "running lease TTL; past it the machine is revoked")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-request queue-wait deadline")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "graceful-drain deadline on SIGTERM/SIGINT")
	flag.Parse()

	if err := run(*addr, *addrFile, *pool, *queue, *leaseTTL, *timeout, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "adelie-simd:", err)
		os.Exit(1)
	}
}

func run(addr, addrFile string, pool, queue int, leaseTTL, timeout, drainTimeout time.Duration) error {
	svc := service.New(service.Config{
		PoolSize: pool, QueueCap: queue,
		LeaseTTL: leaseTTL, RequestTimeout: timeout,
	})
	defer svc.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	resolved := ln.Addr().String()
	fmt.Printf("adelie-simd: listening on http://%s (pool %d, queue %d, lease TTL %s)\n",
		resolved, pool, queue, leaseTTL)
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(resolved+"\n"), 0o644); err != nil {
			return err
		}
	}

	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Printf("adelie-simd: %s: draining (completing admitted requests)...\n", s)
	}

	// Drain order: stop admissions first so requests arriving mid-drain
	// get a clean 503, then let the HTTP server finish every in-flight
	// handler (queued requests included), then verify the lease manager
	// is empty.
	svc.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := svc.Drain(ctx); err != nil {
		return err
	}
	final := svc.StatsNow()
	b, err := json.MarshalIndent(final, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("adelie-simd: final statsz:\n%s\n", b)
	fmt.Printf("adelie-simd: drained cleanly (%d requests served, %d forks, 0 in flight)\n",
		final.OK, final.ForksServed)
	return nil
}
