// gadget-analysis: the Fig. 10 / Table 2 pipeline on the real driver
// suite — scan every driver in all build configurations, print the gadget
// class distribution, and show how the plugin's movable/immovable split
// concentrates gadgets in the part that re-randomization keeps moving.
package main

import (
	"fmt"
	"log"
	"sort"

	"adelie/internal/attack"
	"adelie/internal/drivers"
	"adelie/internal/elfmod"
)

func main() {
	names := make([]string, 0)
	for n := range drivers.All() {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Printf("%-8s %22s %22s %14s\n", "driver", "non-PIC gadgets", "PIC movable/immovable", "NX chain?")
	for _, name := range names {
		mk := drivers.All()[name]
		plain, err := drivers.Build(mk(), drivers.BuildOpts{})
		if err != nil {
			log.Fatal(err)
		}
		rr, err := drivers.Build(mk(), drivers.BuildOpts{
			PIC: true, Retpoline: true, Rerand: true, StackRerand: true, RetEncrypt: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		plainG := scanKind(plain, elfmod.SecText) + scanKind(plain, elfmod.SecFixedText)
		mov := scanKind(rr, elfmod.SecText)
		imm := scanKind(rr, elfmod.SecFixedText)
		chain := "no"
		if q := classify(rr); q != attack.NoChain {
			chain = q.String()
		}
		fmt.Printf("%-8s %22d %15d/%6d %14s\n", name, plainG, mov, imm, chain)
	}

	fmt.Println("\nNote: wrappers (.fixed.text) hold almost no gadgets — the movable")
	fmt.Println("part carries them, and it is exactly the part that never stops moving.")
}

func scanKind(obj *elfmod.Object, kind elfmod.SectionKind) int {
	total := 0
	for _, sec := range obj.Sections {
		if sec.Kind == kind {
			total += len(attack.Scan(sec.Data, 0x10000))
		}
	}
	return total
}

func classify(obj *elfmod.Object) attack.ChainQuality {
	var code []byte
	for _, sec := range obj.Sections {
		if sec.Kind.Executable() {
			code = append(code, sec.Data...)
		}
	}
	return attack.ClassifyModule(code, 0x10000)
}
