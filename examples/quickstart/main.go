// Quickstart: build a driver as a re-randomizable module, load it into
// the simulated kernel, call it, move it, and call it again.
//
// This is the 60-second tour of the public API:
//
//	kcc      — write a driver in the IR
//	plugin   — the "GCC plugin": wrap exports, inject encryption
//	kernel   — boot, load, resolve, protect
//	rerand   — continuous re-randomization
//	workload — the evaluation as a typed experiment registry
package main

import (
	"fmt"
	"log"
	"os"

	"adelie/internal/isa"
	"adelie/internal/kcc"
	"adelie/internal/kernel"
	"adelie/internal/plugin"
	"adelie/internal/rerand"
	"adelie/internal/workload"
)

func main() {
	// 1. A driver: one exported entry point that counts its calls.
	drv := &kcc.Module{Name: "hello"}
	drv.AddFunc("hello_ioctl", true,
		kcc.GlobalLoad(isa.RAX, "calls"),
		kcc.ArithImm(kcc.OpAdd, isa.RAX, 1),
		kcc.GlobalStore("calls", isa.RAX),
		kcc.Ret(),
	)
	drv.AddGlobal(kcc.Global{Name: "calls", Size: 8, Init: make([]byte, 8)})

	// 2. Boot a kernel with full 64-bit KASLR and a re-randomizer.
	k, err := kernel.New(kernel.Config{NumCPUs: 4, Seed: 2024, KASLR: kernel.KASLRFull64})
	if err != nil {
		log.Fatal(err)
	}
	r := rerand.New(k)

	// 3. The plugin transform + PIC compilation, then load.
	obj, err := plugin.Build(drv, plugin.Options{
		Retpoline: true, StackRerand: true, RetEncrypt: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	mod, err := k.Load(obj)
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Add(mod); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded: movable part at %#x, wrappers at %#x, key %#x\n",
		mod.Base(), mod.Immovable.Base, mod.Key())

	// 4. Call it through the kernel symbol table (i.e. via the wrapper).
	entry, _ := k.Symbol("hello_ioctl")
	cpu := k.CPU(0)
	for i := 0; i < 3; i++ {
		n, err := cpu.Call(entry)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("call %d → counter = %d\n", i+1, n)
	}

	// 5. Re-randomize: the movable part moves, the key rotates, yet the
	// module keeps its state and its exported address.
	for i := 0; i < 3; i++ {
		if _, err := r.Step(); err != nil {
			log.Fatal(err)
		}
		n, err := cpu.Call(entry)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after move %d: base %#x, key %#x, counter = %d\n",
			i+1, mod.Base(), mod.Key(), n)
	}
	k.SMR.Flush()
	fmt.Printf("old address ranges drained; SMR delta = %d\n", k.SMR.Stats().Delta())

	// 6. Every figure of the paper's evaluation is a registered
	// Experiment: look one up by name, take its default params (override
	// any with Set), run it, and render or marshal the typed Table.
	// `benchtool list` shows them all; this is the API it drives.
	exp, ok := workload.Experiments.Lookup("fig1")
	if !ok {
		log.Fatal("fig1 not registered")
	}
	table, err := exp.Run(exp.Params(false))
	if err != nil {
		log.Fatal(err)
	}
	table.Fprint(os.Stdout)
}
