// driver-rerand: the paper's deployment scenario in miniature — a server
// whose NVMe and E1000E drivers are continuously re-randomized while
// serving I/O, with the artifact's dmesg statistics at the end.
//
// This mirrors `modprobe randmod module_names=e1000,nvme rand_period=20`
// from the artifact appendix.
package main

import (
	"fmt"
	"log"

	"adelie/internal/cpu"
	"adelie/internal/drivers"
	"adelie/internal/kernel"
	"adelie/internal/sim"
)

func main() {
	m, err := sim.NewMachine(sim.Config{NumCPUs: 20, Seed: 42, KASLR: kernel.KASLRFull64})
	if err != nil {
		log.Fatal(err)
	}
	opts := drivers.BuildOpts{
		PIC: true, Retpoline: true, Rerand: true, StackRerand: true, RetEncrypt: true,
	}
	for _, d := range []string{"nvme", "e1000e"} {
		if _, err := m.LoadDriver(d, opts); err != nil {
			log.Fatal(err)
		}
	}
	if err := m.InitNVMe(); err != nil {
		log.Fatal(err)
	}
	if _, err := m.InitNIC("e1000e"); err != nil {
		log.Fatal(err)
	}
	m.NVMe.Preload(0, []byte("server data"))
	buf, err := m.K.Kmalloc(4096)
	if err != nil {
		log.Fatal(err)
	}

	readVA, _ := m.K.Symbol("nvme_read")
	xmitVA, _ := m.K.Symbol("e1000e_xmit")

	// A mixed storage+network workload; the simulated run covers a few
	// milliseconds, so a 500 µs period (tighter than the paper's 1 ms
	// floor) shows several full re-randomization cycles.
	var slot uint64
	res, err := m.Run(sim.RunConfig{
		Ops: 4000, Workers: 8, RerandPeriodUs: 500,
		SyscallCycles: 1800, BytesPerOp: 2048,
	}, func(c *cpu.CPU) (uint64, error) {
		lat, err := c.Call(readVA, buf, 0, 512)
		if err != nil {
			return 0, err
		}
		if _, err := c.Call(xmitVA, buf, 1448, slot); err != nil {
			return 0, err
		}
		slot++
		return lat, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %.0f ops/s, %.1f MB/s, CPU %.2f%% across 20 cores\n",
		res.OpsPerSec, res.MBPerSec, res.CPUUsagePct)
	fmt.Printf("re-randomizer: %d passes, %.4f%% of one core\n",
		res.RerandSteps,
		float64(res.RerandCycles)/(res.ElapsedSec*sim.CPUHz)*100)

	m.K.SMR.Flush()
	m.R.LogDmesg()
	fmt.Println("\n$ dmesg")
	for _, l := range m.K.Dmesg() {
		fmt.Println(" ", l)
	}
	for _, name := range []string{"nvme", "e1000e"} {
		mod := m.Module(name)
		fmt.Printf("%-7s moved %d times; now at %#x; %d pages remapped, %d GOT entries slid\n",
			name, mod.Rerandomizations, mod.Base(), mod.PagesRemapped, mod.GotEntriesMoved)
	}
}
