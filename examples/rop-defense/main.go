// rop-defense: runs the full JIT-ROP kill chain against a vulnerable
// driver twice — once on a static (vanilla) kernel where it succeeds, and
// once under Adelie's continuous re-randomization where the harvested
// gadget addresses go stale before the payload fires (paper §6).
package main

import (
	"fmt"
	"log"

	"adelie/internal/attack"
	"adelie/internal/cpu"
	"adelie/internal/drivers"
	"adelie/internal/isa"
	"adelie/internal/kcc"
	"adelie/internal/kernel"
)

// vulnerableDriver has the pop-rich epilogue texture of buffer-handling
// code — gadget raw material.
func vulnerableDriver() *kcc.Module {
	m := &kcc.Module{Name: "vuln"}
	m.AddFunc("vuln_ioctl", true,
		kcc.Push(isa.RDX),
		kcc.Push(isa.RSI),
		kcc.Push(isa.RDI),
		kcc.MovImm(isa.RAX, 0),
		kcc.Pop(isa.RDI),
		kcc.Pop(isa.RSI),
		kcc.Pop(isa.RDX),
		kcc.Ret(),
	)
	return m
}

func bootKernel(pwned *uint64) (*kernel.Kernel, error) {
	k, err := kernel.New(kernel.Config{NumCPUs: 4, Seed: 3, KASLR: kernel.KASLRFull64})
	if err != nil {
		return nil, err
	}
	// The attacker's goal: divert control here with chosen arguments
	// (think set_memory_x disabling NX on an attacker page).
	k.DefineNative("set_memory_x", 100, func(c *cpu.CPU) error {
		*pwned = c.Regs[isa.RDI]
		return nil
	})
	return k, nil
}

func main() {
	fmt.Println("=== Attack 1: vanilla module, no re-randomization ===")
	var pwned1 uint64
	k1, err := bootKernel(&pwned1)
	if err != nil {
		log.Fatal(err)
	}
	obj1, err := kcc.Compile(vulnerableDriver(), kcc.Options{Model: kcc.ModelPIC})
	if err != nil {
		log.Fatal(err)
	}
	mod1, err := k1.Load(obj1)
	if err != nil {
		log.Fatal(err)
	}
	out1 := attack.SimulateJITROP(k1, mod1, attack.DefaultJITROP, 0, nil)
	fmt.Printf("  pages disclosed: %d, gadgets found: %d, elapsed ≈ %.1f ms\n",
		out1.PagesRead, out1.GadgetsFound, out1.ElapsedMicros/1000)
	fmt.Printf("  outcome: success=%v (%s)\n", out1.Succeeded, out1.Reason)
	if out1.Succeeded {
		fmt.Printf("  set_memory_x ran with attacker-controlled rdi=%#x — kernel compromised\n", pwned1)
	}

	fmt.Println("\n=== Attack 2: same driver, Adelie re-randomization at 5 ms ===")
	var pwned2 uint64
	k2, err := bootKernel(&pwned2)
	if err != nil {
		log.Fatal(err)
	}
	obj2, err := drivers.Build(vulnerableDriver(), drivers.BuildOpts{PIC: true, Rerand: true})
	if err != nil {
		log.Fatal(err)
	}
	mod2, err := k2.Load(obj2)
	if err != nil {
		log.Fatal(err)
	}
	out2 := attack.SimulateJITROP(k2, mod2, attack.DefaultJITROP, 5_000, func() error {
		if _, err := mod2.Rerandomize(); err != nil {
			return err
		}
		k2.SMR.Flush()
		return nil
	})
	fmt.Printf("  pages disclosed: %d, gadgets found: %d, elapsed ≈ %.1f ms (period: 5 ms)\n",
		out2.PagesRead, out2.GadgetsFound, out2.ElapsedMicros/1000)
	fmt.Printf("  outcome: success=%v (%s)\n", out2.Succeeded, out2.Reason)
	if pwned2 == 0 && !out2.Succeeded {
		fmt.Println("  the module moved mid-attack; the payload hit unmapped addresses")
	}

	fmt.Println("\n=== Entropy: why brute force fails too (§6) ===")
	fmt.Printf("  vanilla KASLR guess probability: 2^-19 = %.2g\n",
		attack.GuessProbability(attack.VanillaWindowBits))
	fmt.Printf("  Adelie 64-bit KASLR:             2^-44 = %.2g\n",
		attack.GuessProbability(attack.Full64WindowBits))
}
