// driver-vm: the paper's deployment scenario (§2.8, §1) — a dedicated
// driver VM (Xen driver domain / SAVIOR-style) runs the physical device
// drivers, continuously re-randomized, while application VMs reach the
// hardware only through paravirtualized I/O. The driver VM is "the only
// vulnerable component in the corresponding guest OS", so Adelie's
// re-randomization concentrates exactly where the attack surface is.
//
// The simulation boots the driver VM's kernel with the ENA driver (the
// adapter the paper re-randomizes in the SAVIOR system) plus NVMe, wires
// the NIC to the application side's frontend, pumps paravirt I/O through
// it, and fires a JIT-ROP attack at the driver VM mid-traffic.
package main

import (
	"fmt"
	"log"

	"adelie/internal/attack"
	"adelie/internal/cpu"
	"adelie/internal/drivers"
	"adelie/internal/kernel"
	"adelie/internal/sim"
)

func main() {
	// ---- Driver VM (Dom0-like): owns the hardware. ----
	dvm, err := sim.NewMachine(sim.Config{NumCPUs: 8, Seed: 2022, KASLR: kernel.KASLRFull64})
	if err != nil {
		log.Fatal(err)
	}
	opts := drivers.BuildOpts{
		PIC: true, Retpoline: true, Rerand: true, StackRerand: true, RetEncrypt: true,
	}
	for _, d := range []string{"ena", "nvme"} {
		if _, err := dvm.LoadDriver(d, opts); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := dvm.InitNIC("ena"); err != nil {
		log.Fatal(err)
	}
	if err := dvm.InitNVMe(); err != nil {
		log.Fatal(err)
	}
	dvm.NVMe.Preload(0, []byte("guest block 0"))
	fmt.Println("driver VM: ena + nvme loaded re-randomizable")
	fmt.Printf("  ena movable @ %#x, nvme movable @ %#x\n",
		dvm.Module("ena").Base(), dvm.Module("nvme").Base())

	// ---- Application VM frontend: paravirt I/O rides the wire. ----
	// The app VM never maps driver memory; it exchanges frames with the
	// driver VM through the virtual NIC pair (dvm.Peer is its viewpoint).
	buf, err := dvm.K.Kmalloc(2048)
	if err != nil {
		log.Fatal(err)
	}
	xmit, _ := dvm.K.Symbol("ena_xmit")
	read, _ := dvm.K.Symbol("nvme_read")

	res, err := dvm.Run(sim.RunConfig{
		Ops: 2000, Workers: 4, RerandPeriodUs: 200, SyscallCycles: 2200,
		BytesPerOp: 1448,
	}, func(c *cpu.CPU) (uint64, error) {
		// Paravirt block read request arrives from the app VM: the driver
		// VM performs the real NVMe read and ships the data back.
		lat, err := c.Call(read, buf, 0, 512)
		if err != nil {
			return 0, err
		}
		if _, err := c.Call(xmit, buf, 1448, 0); err != nil {
			return 0, err
		}
		return lat, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// The app VM's frontend consumes as it goes: the host-side queue is
	// bounded, so count deliveries from the adapter stats, not the
	// residual queue.
	queued := dvm.Peer.TakeHostFrames()
	fmt.Printf("paravirt I/O: %.0f req/s, %d frames delivered to the app VM (%d still queued), CPU %.2f%%\n",
		res.OpsPerSec, dvm.Peer.RxFrames, len(queued), res.CPUUsagePct)
	fmt.Printf("re-randomizer fired %d times during the run\n", res.RerandSteps)

	// ---- The attack: a compromised app VM hits the driver VM's ENA. ----
	fmt.Println("\napp VM attempts JIT-ROP against the driver VM's ena driver:")
	mod := dvm.Module("ena")
	out := attack.SimulateJITROP(dvm.K, mod, attack.DefaultJITROP, 10_000, func() error {
		if _, err := dvm.R.Step(); err != nil {
			return err
		}
		dvm.K.SMR.Flush()
		return nil
	})
	fmt.Printf("  success=%v (%s)\n", out.Succeeded, out.Reason)
	switch {
	case !out.Succeeded && out.GadgetsFound > 0 && len(out.Reason) > 8 && out.Reason[:8] == "no chain":
		fmt.Println("  return-address encryption starved the driver of usable pop gadgets")
	case !out.Succeeded:
		fmt.Println("  the driver VM moved its driver mid-attack; the app VMs never noticed")
	}
	// Traffic still flows after the attempt.
	if _, err := dvm.K.CPU(0).Call(read, buf, 0, 512); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  post-attack block read: OK")
}
