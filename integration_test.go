// Integration tests exercising the full artifact flow across packages:
// boot → build drivers with the plugin → load → serve traffic → continuous
// re-randomization → attack resistance → clean drain. These are the
// end-to-end counterparts of the artifact appendix's workflow.
package adelie_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"adelie/internal/attack"
	"adelie/internal/cpu"
	"adelie/internal/drivers"
	"adelie/internal/isa"
	"adelie/internal/kernel"
	"adelie/internal/mm"
	"adelie/internal/sim"
	"adelie/internal/workload"
)

func fullOpts() drivers.BuildOpts {
	return drivers.BuildOpts{
		PIC: true, Retpoline: true, Rerand: true, StackRerand: true, RetEncrypt: true,
	}
}

// TestArtifactWorkflow mirrors the artifact appendix: load the full
// driver set re-randomizable, run mixed traffic under a 20 ms period,
// verify the dmesg counters balance, and confirm determinism.
func TestArtifactWorkflow(t *testing.T) {
	m, err := sim.NewMachine(sim.Config{NumCPUs: 20, Seed: 77, KASLR: kernel.KASLRFull64})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"dummy", "nvme", "e1000e", "ext4", "fuse", "xhci"} {
		if _, err := m.LoadDriver(d, fullOpts()); err != nil {
			t.Fatalf("%s: %v", d, err)
		}
	}
	if err := m.InitNVMe(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.InitNIC("e1000e"); err != nil {
		t.Fatal(err)
	}
	if err := m.InitXHCI(); err != nil {
		t.Fatal(err)
	}
	// Ops run concurrently on min(Workers, NumCPUs) vCPUs: give each lane
	// its own DMA buffer and TX-descriptor slot, as an SMP driver would.
	bufs := make([]uint64, m.K.NumCPUs())
	for i := range bufs {
		var err error
		if bufs[i], err = m.K.Kmalloc(4096); err != nil {
			t.Fatal(err)
		}
	}
	syms := map[string]uint64{}
	for _, s := range []string{"dummy_ioctl", "nvme_read", "ext4_get_block", "fuse_dispatch", "xhci_poll", "e1000e_xmit"} {
		va, ok := m.K.Symbol(s)
		if !ok {
			t.Fatalf("%s not exported", s)
		}
		syms[s] = va
	}

	// A 100 µs period (far tighter than the paper's 1 ms floor) keeps the
	// test fast while firing the randomizer many times within the run.
	res, err := m.Run(sim.RunConfig{
		Ops: 600, Workers: 4, RerandPeriodUs: 100, SyscallCycles: 2000,
	}, func(c *cpu.CPU) (uint64, error) {
		buf := bufs[c.ID]
		if _, err := c.Call(syms["dummy_ioctl"], 0); err != nil {
			return 0, err
		}
		lat, err := c.Call(syms["nvme_read"], buf, 3, 512)
		if err != nil {
			return 0, err
		}
		if _, err := c.Call(syms["ext4_get_block"], 1, 100); err != nil {
			return 0, err
		}
		if _, err := c.Call(syms["fuse_dispatch"], 3); err != nil {
			return 0, err
		}
		if _, err := c.Call(syms["xhci_poll"]); err != nil {
			return 0, err
		}
		if _, err := c.Call(syms["e1000e_xmit"], buf, 512, uint64(c.ID)); err != nil {
			return 0, err
		}
		return lat, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RerandSteps == 0 {
		t.Fatal("re-randomizer never fired")
	}

	// dmesg counters must balance after drain, as in the artifact output.
	// Stacks still pooled for reuse are drained explicitly, as a module
	// unload would.
	m.K.SMR.Flush()
	if err := m.R.Pool.Release(m.R.Pool.SwapAll()); err != nil {
		t.Fatal(err)
	}
	m.R.LogDmesg()
	log := strings.Join(m.K.Dmesg(), "\n")
	if !strings.Contains(log, "SMR Delta: 0") || !strings.Contains(log, "Stack Delta: 0") {
		t.Fatalf("counters did not balance:\n%s", log)
	}
	// Every driver moved the same number of times (one pass moves all).
	for _, d := range []string{"dummy", "nvme", "e1000e", "ext4", "fuse", "xhci"} {
		if got := m.Module(d).Rerandomizations; got != uint64(res.RerandSteps) {
			t.Errorf("%s moved %d times, want %d", d, got, res.RerandSteps)
		}
	}
}

// TestExperimentRegistryEndToEnd drives the experiment API the way
// cmd/benchtool does — lookup, param overrides, Run, render, JSON —
// for a machine-booting figure, end to end through the public surface.
func TestExperimentRegistryEndToEnd(t *testing.T) {
	exp, ok := workload.Experiments.Lookup("fig9")
	if !ok {
		t.Fatal("fig9 not registered")
	}
	p := exp.Params(false)
	if err := p.Set("ops", 300); err != nil {
		t.Fatal(err)
	}
	tab, err := exp.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(workload.IoctlVariants) {
		t.Fatalf("fig9 produced %d rows, want %d", len(tab.Rows), len(workload.IoctlVariants))
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== Fig. 9", "wrappers+stack", "vs linux"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// The structured form must round-trip: every row matches the schema.
	b, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	var back workload.Table
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(tab.Rows) || len(back.Columns) != len(tab.Columns) {
		t.Fatalf("JSON round-trip changed shape: %d×%d vs %d×%d",
			len(back.Rows), len(back.Columns), len(tab.Rows), len(tab.Columns))
	}
	for i, row := range back.Rows {
		if len(row) != len(back.Columns) {
			t.Fatalf("row %d has %d cells for %d columns", i, len(row), len(back.Columns))
		}
	}
}

// TestKASLRPlacementIsUnpredictable verifies that two kernels with
// different seeds place the same module at unrelated addresses, and the
// same seed reproduces placement exactly — the randomization contract.
func TestKASLRPlacementIsUnpredictable(t *testing.T) {
	base := func(seed int64) uint64 {
		m, err := sim.NewMachine(sim.Config{NumCPUs: 2, Seed: seed, KASLR: kernel.KASLRFull64})
		if err != nil {
			t.Fatal(err)
		}
		mod, err := m.LoadDriver("dummy", fullOpts())
		if err != nil {
			t.Fatal(err)
		}
		return mod.Base()
	}
	a, b, a2 := base(1), base(2), base(1)
	if a == b {
		t.Fatal("different seeds produced identical placement")
	}
	if a != a2 {
		t.Fatal("same seed did not reproduce placement")
	}
	if a < mm.KernelBase || b < mm.KernelBase {
		t.Fatal("module placed outside the kernel half")
	}
}

// TestStaleAddressWindow measures the property §6 depends on: after a
// re-randomization step and SMR drain, a leaked pre-move address is
// useless for execution, reading, or GOT tampering.
func TestStaleAddressWindow(t *testing.T) {
	m, err := sim.NewMachine(sim.Config{NumCPUs: 4, Seed: 88, KASLR: kernel.KASLRFull64})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := m.LoadDriver("dummy", fullOpts())
	if err != nil {
		t.Fatal(err)
	}
	leakedBase := mod.Base()
	leakedGOT := mod.Movable.GotLocal.Base
	if _, err := m.R.Step(); err != nil {
		t.Fatal(err)
	}
	m.K.SMR.Flush()

	c := m.K.CPU(0)
	if _, err := c.Call(leakedBase); err == nil {
		t.Fatal("stale code address still executable")
	}
	if _, err := m.K.AS.ReadBytes(leakedBase, 8); err == nil {
		t.Fatal("stale address still readable (info-leak window)")
	}
	if err := m.K.AS.Write64Force(leakedGOT, 0x41414141); err == nil {
		t.Fatal("stale GOT still writable")
	}
	// Meanwhile the module works at its new home.
	if ret, err := m.Call("dummy_ioctl", 0); err != nil || ret != 0 {
		t.Fatalf("module broken after move: (%d, %v)", ret, err)
	}
}

// TestChainPayloadGoesStaleAcrossMove builds a real ROP payload against
// the current layout, moves the module, and confirms the payload faults —
// the precise mechanism behind §6's JIT-ROP defense, without the timing
// model.
func TestChainPayloadGoesStaleAcrossMove(t *testing.T) {
	m, err := sim.NewMachine(sim.Config{NumCPUs: 4, Seed: 99, KASLR: kernel.KASLRFull64})
	if err != nil {
		t.Fatal(err)
	}
	// The dummy driver's compiled body plus plugin epilogues may or may
	// not contain a full chain; use the NIC driver which saves/restores
	// argument-register state. Scan whatever is there and accept any
	// gadget as the probe target.
	mod, err := m.LoadDriver("e1000e", drivers.BuildOpts{PIC: true, Rerand: true})
	if err != nil {
		t.Fatal(err)
	}
	gs, err := attack.ScanMapped(m.K.AS, mod.Base(), mod.Movable.Pages*4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) == 0 {
		t.Fatal("no gadgets found in NIC driver text")
	}
	// Execute the first ret-terminated gadget directly: must work now.
	var probe uint64
	for _, g := range gs {
		if g.EndsIn == isa.OpRET && g.Insts[0].Op == isa.OpNOP {
			probe = g.VA
			break
		}
	}
	if probe == 0 {
		probe = gs[0].VA
	}
	_ = probe // direct gadget execution is covered by attack tests; here
	// we verify the address dies across a move.
	if _, err := mod.Rerandomize(); err != nil {
		t.Fatal(err)
	}
	m.K.SMR.Flush()
	if _, _, err := m.K.AS.Translate(probe, mm.AccessExec); err == nil {
		t.Fatal("gadget address survived the move")
	}
}

// TestManyModulesManyMoves is a soak test: a dozen modules, dozens of
// moves, traffic throughout, no leaks.
func TestManyModulesManyMoves(t *testing.T) {
	m, err := sim.NewMachine(sim.Config{NumCPUs: 8, Seed: 123, KASLR: kernel.KASLRFull64})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"dummy", "nvme", "e1000e", "e1000", "ena", "ext4", "fuse", "xhci"}
	for _, d := range names {
		if _, err := m.LoadDriver(d, fullOpts()); err != nil {
			t.Fatal(err)
		}
	}
	va, _ := m.K.Symbol("dummy_ioctl")
	c := m.K.CPU(0)
	liveBefore := m.K.AS.Phys().Live()
	for round := 0; round < 25; round++ {
		if _, err := m.R.Step(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if _, err := c.Call(va, 0); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	m.K.SMR.Flush()
	if d := m.K.SMR.Stats().Delta(); d != 0 {
		t.Fatalf("SMR delta = %d", d)
	}
	// Physical frames must not leak across moves (local GOT pages are
	// allocated and freed each cycle; stacks recycle through the pool).
	liveAfter := m.K.AS.Phys().Live()
	if liveAfter > liveBefore+int64(len(names))*4+8 {
		t.Fatalf("frame leak: %d → %d live frames", liveBefore, liveAfter)
	}
}
